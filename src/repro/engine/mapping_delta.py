"""Digest-keyed caching and delta splicing for mapping operators.

:class:`MappingCache` is the mapping-ops twin of
:class:`repro.nn.rulebook.RulebookCache`: results are keyed by a BLAKE2b
digest of the operand arrays plus the operator parameters, held in an
LRU of bounded capacity, with hit/miss counters the session surfaces.

:class:`DeltaMappingCache` upgrades misses the same way
:class:`repro.engine.delta.DeltaRulebookCache` upgrades rulebook misses:
when a self-query kNN or ball-query lookup misses but the new coordinate
set is within a churn threshold of a recently seen one (measured by
:func:`repro.engine.delta.coordinate_delta` over packed keys), the cached
neighbor table is *spliced* instead of rebuilt — stable rows are index
remapped through the monotone ``old_to_new`` map, and only the queries
whose neighborhoods an added or removed point can touch are re-searched
with the bucket kernels.  The spliced result is bit-identical to a
from-scratch search; farthest-point sampling stays rebuild-only because
one changed pick cascades through every later pick.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.engine import mapping
from repro.engine.delta import (
    DEFAULT_DELTA_THRESHOLD,
    CoordinateDelta,
    coordinate_delta,
)
from repro.engine.mapping import MappingResult, MappingStats
from repro.sparse.hashmap import _AXIS_MASK, pack_coords

DEFAULT_MAPPING_CAPACITY = 32

#: Key marker for self-query lookups (queries are the points themselves).
_SELF = "self"


def array_digest(array: np.ndarray) -> bytes:
    """BLAKE2b-16 digest of an array's dtype, shape, and contents."""
    arr = np.ascontiguousarray(array)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(arr.dtype).encode("ascii"))
    digest.update(np.asarray(arr.shape, dtype=np.int64).tobytes())
    digest.update(arr.tobytes())
    return digest.digest()


@dataclass(frozen=True)
class MappingCacheStats:
    """Counter snapshot of a (delta) mapping cache."""

    hits: int
    misses: int
    patches: int
    rebuilds: int
    patched_added: int
    patched_removed: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def patch_rate(self) -> float:
        splices = self.patches + self.rebuilds
        return self.patches / splices if splices else 0.0


class MappingCache:
    """LRU cache of :class:`MappingResult` keyed by operand digests."""

    def __init__(self, capacity: int = DEFAULT_MAPPING_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, MappingResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    # -- lookups ---------------------------------------------------------
    def knn(self, points, k: int, queries=None) -> MappingResult:
        coords = _operand(points)
        query_coords = None if queries is None else _operand(queries)
        key = (
            "knn",
            int(k),
            array_digest(coords),
            _SELF if query_coords is None else array_digest(query_coords),
        )
        return self._lookup(key, ("knn", int(k)), coords, query_coords)

    def ball_query(
        self, points, radius: float, max_samples: int, queries=None
    ) -> MappingResult:
        coords = _operand(points)
        query_coords = None if queries is None else _operand(queries)
        key = (
            "ball_query",
            float(radius),
            int(max_samples),
            array_digest(coords),
            _SELF if query_coords is None else array_digest(query_coords),
        )
        geometry = ("ball_query", float(radius), int(max_samples))
        return self._lookup(key, geometry, coords, query_coords)

    def farthest_point_sample(self, points, num_samples: int) -> MappingResult:
        coords = _operand(points)
        key = ("fps", int(num_samples), array_digest(coords))
        return self._lookup(key, ("fps", int(num_samples)), coords, None)

    # -- statistics ------------------------------------------------------
    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def stats(self) -> MappingCacheStats:
        return MappingCacheStats(
            hits=self.hits,
            misses=self.misses,
            patches=getattr(self, "patches", 0),
            rebuilds=getattr(self, "rebuilds", 0),
            patched_added=getattr(self, "patched_added", 0),
            patched_removed=getattr(self, "patched_removed", 0),
        )

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    # -- machinery -------------------------------------------------------
    def _lookup(
        self,
        key: tuple,
        geometry: tuple,
        coords: np.ndarray,
        query_coords: Optional[np.ndarray],
    ) -> MappingResult:
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            self._on_hit(key)
            return entry
        self.misses += 1
        result = self._miss(key, geometry, coords, query_coords)
        self._insert(key, result)
        return result

    def _miss(
        self,
        key: tuple,
        geometry: tuple,
        coords: np.ndarray,
        query_coords: Optional[np.ndarray],
    ) -> MappingResult:
        return _build(geometry, coords, query_coords)

    def _on_hit(self, key: tuple) -> None:
        pass

    def _insert(self, key: tuple, result: MappingResult) -> None:
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            self._evicted(evicted)

    def _evicted(self, key: tuple) -> None:
        pass


def _operand(points) -> np.ndarray:
    """The raw coordinate rows a lookup digests (tensors contribute coords)."""
    coords = np.asarray(getattr(points, "coords", points))
    if coords.ndim != 2 or coords.shape[1] != 3:
        raise ValueError(f"expected (N, 3) points, got shape {coords.shape}")
    return coords


def _build(
    geometry: tuple, coords: np.ndarray, query_coords: Optional[np.ndarray]
) -> MappingResult:
    if geometry[0] == "knn":
        return mapping.knn(coords, query_coords, k=geometry[1])
    if geometry[0] == "ball_query":
        return mapping.ball_query(
            coords, query_coords, radius=geometry[1], max_samples=geometry[2]
        )
    if geometry[0] == "fps":
        return mapping.farthest_point_sample(coords, geometry[1])
    raise ValueError(f"unknown mapping geometry {geometry!r}")


class DeltaMappingCache(MappingCache):
    """A :class:`MappingCache` that splices near-miss neighbor tables.

    Mirrors :class:`repro.engine.delta.DeltaRulebookCache`: remembered
    coordinate sets are diffed against incoming ones (most recent first,
    ``max_candidates`` deep, with a cheap size pre-filter), and a churn
    ratio at or below ``threshold`` routes the miss through the patch
    path.  Only self-query kNN / ball-query lookups over canonically
    sorted integer coordinates (the :class:`SparseTensor3D` layout) are
    delta-eligible; everything else falls back to a plain rebuild.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_MAPPING_CAPACITY,
        threshold: float = DEFAULT_DELTA_THRESHOLD,
        max_candidates: int = 4,
    ) -> None:
        super().__init__(capacity)
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must lie in (0, 1], got {threshold}")
        if max_candidates < 1:
            raise ValueError(
                f"max_candidates must be positive, got {max_candidates}"
            )
        self.threshold = float(threshold)
        self.max_candidates = int(max_candidates)
        self.patches = 0
        self.rebuilds = 0
        self.patched_added = 0
        self.patched_removed = 0
        #: key -> (geometry, packed keys, coordinate rows), LRU-ordered.
        self._coord_sets: "OrderedDict[tuple, Tuple[tuple, np.ndarray, np.ndarray]]" = (
            OrderedDict()
        )

    def reset_stats(self) -> None:
        super().reset_stats()
        self.patches = 0
        self.rebuilds = 0
        self.patched_added = 0
        self.patched_removed = 0

    def clear(self) -> None:
        super().clear()
        self._coord_sets.clear()

    # -- hooks -----------------------------------------------------------
    def _miss(
        self,
        key: tuple,
        geometry: tuple,
        coords: np.ndarray,
        query_coords: Optional[np.ndarray],
    ) -> MappingResult:
        packed = _packable_self_query(geometry, coords, query_coords)
        if packed is None:
            return _build(geometry, coords, query_coords)
        source = self._find_patch_source(geometry, packed)
        if source is not None:
            source_key, source_coords, delta = source
            patched = _patch(
                geometry, self._entries[source_key], source_coords, coords, delta
            )
            self.patches += 1
            self.patched_added += delta.num_added
            self.patched_removed += delta.num_removed
            self._remember(key, geometry, packed, coords)
            return patched
        self.rebuilds += 1
        self._remember(key, geometry, packed, coords)
        return _build(geometry, coords, query_coords)

    def _on_hit(self, key: tuple) -> None:
        if key in self._coord_sets:
            self._coord_sets.move_to_end(key)

    def _evicted(self, key: tuple) -> None:
        self._coord_sets.pop(key, None)

    def _remember(
        self, key: tuple, geometry: tuple, packed: np.ndarray, coords: np.ndarray
    ) -> None:
        self._coord_sets[key] = (geometry, packed, coords)
        self._coord_sets.move_to_end(key)
        while len(self._coord_sets) > self.capacity:
            self._coord_sets.popitem(last=False)

    def _find_patch_source(
        self, geometry: tuple, new_keys: np.ndarray
    ) -> Optional[Tuple[tuple, np.ndarray, CoordinateDelta]]:
        new_size = len(new_keys)
        scanned = 0
        for key in reversed(self._coord_sets):
            if scanned >= self.max_candidates:
                break
            stored_geometry, old_keys, old_coords = self._coord_sets[key]
            if stored_geometry != geometry or key not in self._entries:
                continue
            scanned += 1
            bound = max(len(old_keys), new_size, 1)
            if abs(len(old_keys) - new_size) > self.threshold * bound:
                continue
            delta = coordinate_delta(old_keys, new_keys)
            if delta.ratio <= self.threshold:
                return key, old_coords, delta
        return None


def _packable_self_query(
    geometry: tuple, coords: np.ndarray, query_coords: Optional[np.ndarray]
) -> Optional[np.ndarray]:
    """Packed keys when a lookup is delta-eligible, else ``None``.

    Eligibility: a self-query kNN / ball-query over non-negative integer
    coordinates in canonical (strictly increasing packed-key) order —
    the invariants :func:`coordinate_delta` splicing relies on.
    """
    if geometry[0] not in ("knn", "ball_query") or query_coords is not None:
        return None
    if coords.dtype.kind not in ("i", "u") or not len(coords):
        return None
    if coords.min() < 0 or coords.max() > _AXIS_MASK:
        return None
    keys = pack_coords(coords)
    if not np.all(keys[1:] > keys[:-1]):
        return None
    return keys


def _patched_stats(
    op: str,
    old: MappingStats,
    fresh: Optional[MappingStats],
    num_points: int,
    num_queries: int,
) -> MappingStats:
    return MappingStats(
        op=op,
        method="delta-patch",
        num_points=num_points,
        num_queries=num_queries,
        candidates=fresh.candidates if fresh else 0,
        matches=old.matches,
        cells=fresh.cells if fresh else 0,
        shells=fresh.shells if fresh else 0,
    )


def _patch(
    geometry: tuple,
    cached: MappingResult,
    old_coords: np.ndarray,
    new_coords: np.ndarray,
    delta: CoordinateDelta,
) -> MappingResult:
    if geometry[0] == "knn":
        return _patch_knn(cached, old_coords, new_coords, delta, geometry[1])
    return _patch_ball(
        cached, old_coords, new_coords, delta, geometry[1], geometry[2]
    )


def _patch_knn(
    cached: MappingResult,
    old_coords: np.ndarray,
    new_coords: np.ndarray,
    delta: CoordinateDelta,
    k: int,
) -> MappingResult:
    """Splice a self-query kNN table under a coordinate delta.

    A stable query's row survives verbatim (index-remapped) unless a
    current neighbor was removed or an added point lands at or inside its
    k-th distance — ties included, because an added point at equal
    distance can displace the k-th neighbor under index ordering.  The
    monotone ``old_to_new`` map preserves the (distance, index) tie-break
    order of surviving rows, so remapped rows match a from-scratch search
    bit for bit; affected rows are re-searched with the bucket kernel.
    """
    old_to_new = delta.old_to_new
    num_new = delta.new_size
    old_indices = cached.indices
    old_dists = cached.distances
    indices = np.full((num_new, k), -1, dtype=np.int64)
    dists = np.full((num_new, k), np.inf, dtype=old_dists.dtype)
    counts = np.full(num_new, min(k, num_new), dtype=np.int64)

    stable_old = np.flatnonzero(old_to_new >= 0)
    valid = old_indices >= 0
    mapped = np.where(valid, old_to_new[np.where(valid, old_indices, 0)], -1)
    lost = (valid & (mapped < 0)).any(axis=1)

    pts_new = mapping.as_point_array(new_coords)
    added_rows = delta.added_new_rows
    # inf-padded rows make every addition a trigger, covering under-full rows.
    kth = old_dists[:, k - 1] if k > 0 else np.zeros(len(old_indices))
    if added_rows.size and stable_old.size:
        stable_queries = pts_new[old_to_new[stable_old]]
        diff = stable_queries[:, None, :] - pts_new[added_rows][None, :, :]
        add_d2 = (diff * diff).sum(axis=2)
        add_hit = (add_d2 <= kth[stable_old][:, None]).any(axis=1)
    else:
        add_hit = np.zeros(len(stable_old), dtype=bool)

    affected = lost[stable_old] | add_hit
    keep_old = stable_old[~affected]
    keep_new = old_to_new[keep_old]
    indices[keep_new] = mapped[keep_old]
    dists[keep_new] = old_dists[keep_old]

    redo = np.sort(np.concatenate([added_rows, old_to_new[stable_old[affected]]]))
    fresh_stats = None
    if redo.size:
        fresh = mapping.knn(new_coords, new_coords[redo], k=k)
        indices[redo] = fresh.indices
        dists[redo] = fresh.distances
        fresh_stats = fresh.stats
    stats = _patched_stats("knn", cached.stats, fresh_stats, num_new, num_new)
    stats = MappingStats(
        op=stats.op,
        method=stats.method,
        num_points=stats.num_points,
        num_queries=stats.num_queries,
        candidates=stats.candidates,
        matches=int((indices >= 0).sum()),
        cells=stats.cells,
        shells=stats.shells,
    )
    return MappingResult(indices, dists, counts, None, stats)


def _patch_ball(
    cached: MappingResult,
    old_coords: np.ndarray,
    new_coords: np.ndarray,
    delta: CoordinateDelta,
    radius: float,
    max_samples: int,
) -> MappingResult:
    """Splice a self-query ball-query table under a coordinate delta.

    A stable query is affected exactly when some added or removed point
    lies within the radius (ties included): additions can enter or, via
    index ordering, displace entries of a capped row; removals can vacate
    a slot that a beyond-cap point should fill.  Unaffected rows remap
    through the monotone index map, preserving point-index order.
    """
    old_to_new = delta.old_to_new
    num_new = delta.new_size
    old_indices = cached.indices
    indices = np.full((num_new, max_samples), -1, dtype=np.int64)
    dists = np.full((num_new, max_samples), np.inf, dtype=cached.distances.dtype)
    counts = np.zeros(num_new, dtype=np.int64)

    stable_old = np.flatnonzero(old_to_new >= 0)
    pts_new = mapping.as_point_array(new_coords)
    pts_old = mapping.as_point_array(old_coords)
    r2 = float(radius) * float(radius)

    stable_queries = pts_new[old_to_new[stable_old]]
    added_rows = delta.added_new_rows
    removed_old = np.flatnonzero(old_to_new < 0)
    add_hit = _any_within(stable_queries, pts_new[added_rows], r2)
    removed_hit = _any_within(stable_queries, pts_old[removed_old], r2)

    affected = add_hit | removed_hit
    keep_old = stable_old[~affected]
    keep_new = old_to_new[keep_old]
    valid = old_indices[keep_old] >= 0
    mapped = np.where(
        valid, old_to_new[np.where(valid, old_indices[keep_old], 0)], -1
    )
    indices[keep_new] = mapped
    dists[keep_new] = cached.distances[keep_old]
    counts[keep_new] = cached.counts[keep_old]

    redo = np.sort(np.concatenate([added_rows, old_to_new[stable_old[affected]]]))
    fresh_stats = None
    if redo.size:
        fresh = mapping.ball_query(
            new_coords, new_coords[redo], radius=radius, max_samples=max_samples
        )
        indices[redo] = fresh.indices
        dists[redo] = fresh.distances
        counts[redo] = fresh.counts
        fresh_stats = fresh.stats
    stats = _patched_stats("ball_query", cached.stats, fresh_stats, num_new, num_new)
    stats = MappingStats(
        op=stats.op,
        method=stats.method,
        num_points=stats.num_points,
        num_queries=stats.num_queries,
        candidates=stats.candidates,
        matches=int((indices >= 0).sum()),
        cells=stats.cells,
        shells=stats.shells,
    )
    return MappingResult(indices, dists, counts, None, stats)


def _any_within(queries: np.ndarray, points: np.ndarray, r2: float) -> np.ndarray:
    """Per-query flag: does any of ``points`` lie at squared distance
    ``<= r2``?  The churn matrix is (stable x churned) — small by the
    threshold gate that admitted the delta."""
    if len(queries) == 0 or len(points) == 0:
        return np.zeros(len(queries), dtype=bool)
    diff = queries[:, None, :] - points[None, :, :]
    d2 = (diff * diff).sum(axis=2)
    return (d2 <= r2).any(axis=1)
