"""Unified inference engine: the session front door of the reproduction.

:class:`repro.engine.session.InferenceSession` is the single entry point
for running the SS U-Net against every consumer of the matching results:
the numeric network forward, the analytical cycle/latency estimate, the
cycle-accurate accelerator simulation, and the host-side (PS) model all
draw their rulebooks from one session-owned :class:`RulebookCache`, and
whole-network execution plans (one per input site set) are reused across
frames, batches, and estimates through the cross-scale
:class:`repro.engine.session.PlanCache`.

Underneath the session sits the pluggable compute seam of
:mod:`repro.engine.backend`: an abstract :class:`ExecutionBackend`
(fused numpy, scipy CSR, multiprocessing-sharded, or any registered
third-party engine) evaluates rulebooks against features, bit-identical
across backends for every session precision.

For nearly-static streams, :mod:`repro.engine.delta` upgrades the
digest-keyed caches to incremental patching: a digest miss whose
coordinate set is within a churn threshold of a recent entry splices
the cached rulebook (bit-identically to from-scratch matching) instead
of rebuilding it, making warm-stream matching cost proportional to the
per-frame churn rather than the scene size.
"""

from repro.engine.backend import (
    BackendCapabilities,
    ExecPlan,
    ExecutionBackend,
    NumpyFusedBackend,
    ScipySparseBackend,
    ShardedProcessBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.engine.delta import (
    DEFAULT_DELTA_THRESHOLD,
    CoordinateDelta,
    DeltaCacheStats,
    DeltaRulebookCache,
    DeltaUnsupportedError,
    RulebookDelta,
    coordinate_delta,
    patch_rulebook,
    patch_sparse_conv_rulebook,
    patch_submanifold_rulebook,
)
from repro.engine.session import (
    InferenceSession,
    LayerEstimate,
    NetworkEstimate,
    NetworkPlan,
    PlanCache,
    QuantizationSpec,
    ScalePlan,
    SessionStats,
    SubconvEstimate,
)

__all__ = [
    "InferenceSession",
    "PlanCache",
    "NetworkPlan",
    "ScalePlan",
    "QuantizationSpec",
    "SessionStats",
    "SubconvEstimate",
    "LayerEstimate",
    "NetworkEstimate",
    "ExecutionBackend",
    "ExecPlan",
    "BackendCapabilities",
    "NumpyFusedBackend",
    "ScipySparseBackend",
    "ShardedProcessBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "CoordinateDelta",
    "RulebookDelta",
    "coordinate_delta",
    "patch_rulebook",
    "patch_submanifold_rulebook",
    "patch_sparse_conv_rulebook",
    "DeltaRulebookCache",
    "DeltaCacheStats",
    "DeltaUnsupportedError",
    "DEFAULT_DELTA_THRESHOLD",
]
