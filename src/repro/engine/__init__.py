"""Unified inference engine: the session front door of the reproduction.

:class:`repro.engine.session.InferenceSession` is the single entry point
for running the SS U-Net against every consumer of the matching results:
the numeric network forward, the analytical cycle/latency estimate, the
cycle-accurate accelerator simulation, and the host-side (PS) model all
draw their rulebooks from one session-owned :class:`RulebookCache`, and
whole-network execution plans (one per input site set) are reused across
frames, batches, and estimates through the cross-scale
:class:`repro.engine.session.PlanCache`.

Underneath the session sits the pluggable compute seam of
:mod:`repro.engine.backend`: an abstract :class:`ExecutionBackend`
(fused numpy, scipy CSR, multiprocessing-sharded, or any registered
third-party engine) evaluates rulebooks against features, bit-identical
across backends for every session precision.

For nearly-static streams, :mod:`repro.engine.delta` upgrades the
digest-keyed caches to incremental patching: a digest miss whose
coordinate set is within a churn threshold of a recent entry splices
the cached rulebook (bit-identically to from-scratch matching) instead
of rebuilding it, making warm-stream matching cost proportional to the
per-frame churn rather than the scene size.

:mod:`repro.engine.mapping` adds the mapping-ops subsystem for the
point-based network family: vectorized sorting-based kNN, ball query,
farthest-point sampling, and grouping kernels (bit-identical to their
brute-force references), with :mod:`repro.engine.mapping_delta`
providing the digest-keyed :class:`MappingCache` and the delta-splicing
:class:`DeltaMappingCache` that patches cached neighbor tables under
small coordinate churn.  Sessions surface the subsystem through
:meth:`repro.engine.session.InferenceSession.map` and serve
``uses_mapping_ops`` networks end to end.
"""

from repro.engine.backend import (
    BackendCapabilities,
    ExecPlan,
    ExecutionBackend,
    NumpyFusedBackend,
    ScipySparseBackend,
    ShardSpecStore,
    ShardedProcessBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.engine.delta import (
    DEFAULT_DELTA_THRESHOLD,
    CoordinateDelta,
    DeltaCacheStats,
    DeltaRulebookCache,
    DeltaUnsupportedError,
    RulebookDelta,
    coordinate_delta,
    patch_rulebook,
    patch_sparse_conv_rulebook,
    patch_submanifold_rulebook,
)
from repro.engine.mapping import (
    MappingResult,
    MappingStats,
    as_point_array,
    ball_query,
    ball_query_bruteforce,
    farthest_point_sample,
    farthest_point_sample_bruteforce,
    group_points,
    knn,
    knn_bruteforce,
)
from repro.engine.mapping_delta import (
    DEFAULT_MAPPING_CAPACITY,
    DeltaMappingCache,
    MappingCache,
    MappingCacheStats,
    array_digest,
)
from repro.engine.session import (
    InferenceSession,
    LayerEstimate,
    NetworkEstimate,
    NetworkPlan,
    PlanCache,
    PointNetworkEstimate,
    QuantizationSpec,
    ScalePlan,
    SessionStats,
    SubconvEstimate,
)

__all__ = [
    "InferenceSession",
    "PlanCache",
    "NetworkPlan",
    "ScalePlan",
    "QuantizationSpec",
    "SessionStats",
    "SubconvEstimate",
    "LayerEstimate",
    "NetworkEstimate",
    "ExecutionBackend",
    "ExecPlan",
    "BackendCapabilities",
    "NumpyFusedBackend",
    "ScipySparseBackend",
    "ShardedProcessBackend",
    "ShardSpecStore",
    "register_backend",
    "get_backend",
    "available_backends",
    "CoordinateDelta",
    "RulebookDelta",
    "coordinate_delta",
    "patch_rulebook",
    "patch_submanifold_rulebook",
    "patch_sparse_conv_rulebook",
    "DeltaRulebookCache",
    "DeltaCacheStats",
    "DeltaUnsupportedError",
    "DEFAULT_DELTA_THRESHOLD",
    "MappingResult",
    "MappingStats",
    "as_point_array",
    "knn",
    "knn_bruteforce",
    "ball_query",
    "ball_query_bruteforce",
    "farthest_point_sample",
    "farthest_point_sample_bruteforce",
    "group_points",
    "MappingCache",
    "DeltaMappingCache",
    "MappingCacheStats",
    "array_digest",
    "DEFAULT_MAPPING_CAPACITY",
    "PointNetworkEstimate",
]
