"""Pluggable execution backends — the compute seam under the session.

PointAcc and HLS4PC both describe point-cloud acceleration as one
mapping layer (the matching / rulebook machinery) with swappable compute
engines underneath.  This module gives the reproduction the same shape
in software: everything above the seam (sessions, plans, rulebook
caches, the serving queue) is backend-agnostic, and the actual
gather-GEMM-scatter arithmetic is an :class:`ExecutionBackend` resolved
by name through a string-keyed registry.

Three backends ship with the repository:

``numpy`` — :class:`NumpyFusedBackend`
    The default: the fused vectorized engine of
    :func:`repro.nn.functional.apply_rulebook` /
    :func:`~repro.nn.functional.apply_rulebook_batch`.  This is the
    reference arithmetic every other backend must match bit for bit.

``scipy`` — :class:`ScipySparseBackend`
    Lowers a rulebook's gather and scatter stages into cached CSR
    matrices (one selection matrix over the input rows, one accumulation
    matrix over the match rows) multiplied against the feature block.
    Degrades gracefully to the numpy engine when scipy is absent.

``sharded`` — :class:`ShardedProcessBackend`
    Fans :meth:`repro.engine.session.InferenceSession.run_batch` digest
    groups out across a ``multiprocessing`` pool.  Each worker holds a
    warm private session (plan and rulebook caches persist across
    dispatches), so repeated site sets stay one matching pass per
    worker.  Per-convolution calls delegate to the fused numpy engine —
    sharding is a batch-level strategy, not a kernel.

Every backend is **bit-identical** to ``numpy`` for all three session
precisions (float64 / float32 / int), cache-cold and cache-warm; the
contract is asserted in ``tests/test_engine_backend.py``.

Writing a backend
-----------------
Subclass :class:`ExecutionBackend`, implement :meth:`~ExecutionBackend.
prepare` (rulebook -> backend-specific :class:`ExecPlan`, memoized for
you by :meth:`~ExecutionBackend.plan_for`), :meth:`~ExecutionBackend.
execute` / :meth:`~ExecutionBackend.execute_batch`, and
:meth:`~ExecutionBackend.capabilities`; then::

    register_backend("mine", MyBackend)
    session = InferenceSession(backend="mine")

See ``docs/backends.md`` for the full walkthrough.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.functional import (
    ApplyStats,
    _accumulator_dtype,
    apply_rulebook,
    apply_rulebook_batch,
)
from repro.nn.rulebook import Rulebook

try:  # pragma: no cover - exercised via ScipySparseBackend paths
    from scipy import sparse as _scipy_sparse
except ImportError:  # pragma: no cover - CI installs scipy; laptops may not
    _scipy_sparse = None


@dataclass(frozen=True)
class BackendCapabilities:
    """What one backend can do — consumed by the session dispatcher.

    ``native_batch`` means :meth:`ExecutionBackend.execute_batch`
    vectorizes the gather/scatter stages across frames (rather than
    looping :meth:`~ExecutionBackend.execute`); ``sharded`` means the
    backend accepts whole ``run_batch`` digest groups via
    :meth:`ExecutionBackend.run_groups`; ``offload_single_group`` asks
    the session to route even a one-group batch through
    ``run_groups`` (a remote tier wants every group off-box, while a
    process pool only pays its IPC cost when there are groups to
    overlap); ``degraded`` marks a backend whose optional dependency is
    missing and which is transparently falling back to the fused numpy
    engine.
    """

    name: str
    description: str
    native_batch: bool = False
    sharded: bool = False
    offload_single_group: bool = False
    degraded: bool = False
    requires: Optional[str] = None


@dataclass(frozen=True)
class ExecPlan:
    """Backend-prepared execution state of one rulebook.

    Subclasses carry whatever the backend precomputes from the matching
    result (CSR operators, device buffers, ...).  Plans depend only on
    the rulebook — never on features or weights — so they are built once
    per rulebook and reused across layers, frames, and batches
    (:meth:`ExecutionBackend.plan_for` memoizes them per backend).
    """

    backend: str
    total_matches: int


class ExecutionBackend:
    """Abstract compute engine: evaluates rulebooks against features.

    The three required operations mirror the fused engine's signatures
    (:func:`repro.nn.functional.apply_rulebook`), so any consumer that
    could call the functional engine can call a backend instead:

    * :meth:`prepare` — lower one rulebook into an :class:`ExecPlan`;
    * :meth:`execute` — ``(N, Cin)`` features, one frame;
    * :meth:`execute_batch` — ``(B, N, Cin)`` stacked features sharing
      one site set.

    Outputs must be bit-identical to the fused numpy engine for every
    dtype the session produces (float64, float32, and the integer
    fixed-point pipeline): equality, not closeness, is the contract the
    session's batching and caching guarantees are built on.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    #: Bound on memoized plans: streaming workloads produce a fresh
    #: rulebook per site set, so the memo must evict like the caches
    #: above it rather than pin every rulebook ever executed.
    plan_capacity: int = 64

    def __init__(self) -> None:
        # id-keyed LRU memo pinning the rulebook to keep ids stable (the
        # same pattern as the session's parameter casts).
        self._plans: "OrderedDict[int, Tuple[Rulebook, ExecPlan]]" = (
            OrderedDict()
        )
        #: Patched rulebooks whose prepared state was refreshed via
        #: :meth:`refresh` (the delta engine's plan-invalidation hook).
        self.plans_refreshed = 0
        #: Of :attr:`plans_refreshed`, how many were served by splicing
        #: the delta into the cached plan instead of re-lowering the
        #: patched rulebook from scratch (see
        #: :meth:`ScipySparseBackend.refresh`).
        self.plans_spliced = 0

    # ------------------------------------------------------------------
    # Plan preparation
    # ------------------------------------------------------------------
    def prepare(self, rulebook: Rulebook) -> ExecPlan:
        """Lower ``rulebook`` into this backend's execution state."""
        raise NotImplementedError

    def plan_for(self, rulebook: Rulebook) -> ExecPlan:
        """Memoized :meth:`prepare` — one plan per live rulebook, LRU-bounded."""
        key = id(rulebook)
        cached = self._plans.get(key)
        if cached is None or cached[0] is not rulebook:
            plan = self.prepare(rulebook)
            self._store_plan(rulebook, plan)
            return plan
        self._plans.move_to_end(key)
        return cached[1]

    def _store_plan(self, rulebook: Rulebook, plan: ExecPlan) -> None:
        """Insert ``plan`` into the LRU memo as most-recently-used."""
        key = id(rulebook)
        self._plans[key] = (rulebook, plan)
        self._plans.move_to_end(key)
        while len(self._plans) > self.plan_capacity:
            self._plans.popitem(last=False)

    def refresh(self, old_rulebook: Rulebook, new_rulebook: Rulebook, delta) -> None:
        """Plan-invalidation hook of the incremental delta engine.

        Called by :class:`repro.engine.delta.DeltaRulebookCache` after it
        patched ``old_rulebook`` into ``new_rulebook`` (``delta`` is the
        :class:`repro.engine.delta.CoordinateDelta` that drove the
        patch).  The base implementation eagerly prepares the patched
        rulebook, so the warm path never pays a cold :meth:`prepare` on
        its next execute; the superseded plan stays in the LRU memo
        (its digest may still recur in an alternating stream) and ages
        out normally.  Backends whose plans are expensive to derive
        (CSR operators, device buffers) can override this to splice
        ``delta`` into the old plan instead of lowering the patched
        rulebook from scratch — :class:`ScipySparseBackend` does, using
        the :class:`repro.engine.delta.RulebookDelta` provenance the
        patchers attach, and counts such refreshes in
        :attr:`plans_spliced` (always a subset of
        :attr:`plans_refreshed`).
        """
        self.plan_for(new_rulebook)
        self.plans_refreshed += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        rulebook: Rulebook,
        in_features: np.ndarray,
        weights: np.ndarray,
        num_outputs: int,
        stats: Optional[ApplyStats] = None,
    ) -> np.ndarray:
        """Evaluate one frame: ``(N, Cin) -> (num_outputs, Cout)``."""
        raise NotImplementedError

    def execute_batch(
        self,
        rulebook: Rulebook,
        stack: np.ndarray,
        weights: np.ndarray,
        num_outputs: int,
        stats: Optional[ApplyStats] = None,
    ) -> np.ndarray:
        """Evaluate a ``(B, N, Cin)`` stack sharing one site set.

        The default loops :meth:`execute` per frame, which is always
        correct (and bit-identical by construction); backends with a
        vectorized batch path override this and set ``native_batch``.
        """
        stack = np.asarray(stack)
        if stack.ndim != 3:
            raise ValueError(
                f"batched features must be (B, N, Cin), got {stack.shape}"
            )
        weights = np.asarray(weights)
        dtype = _accumulator_dtype(stack, weights)
        out = np.zeros(
            (stack.shape[0], num_outputs, weights.shape[2]), dtype=dtype
        )
        # per-frame loop (batch-sized, not element-sized): the fallback
        # batched path is defined as B independent single-frame executes
        for b in range(stack.shape[0]):  # repro-lint: disable=hot-path
            out[b] = self.execute(
                rulebook, stack[b], weights, num_outputs, stats=stats
            )
        return out

    # ------------------------------------------------------------------
    # Batch-group fan-out (sharded backends only)
    # ------------------------------------------------------------------
    def run_groups(
        self,
        net,
        precision: str,
        quantization,
        groups: Sequence["GroupTask"],
    ) -> List[np.ndarray]:
        """Execute whole ``run_batch`` digest groups (sharded backends).

        Only meaningful when ``capabilities().sharded`` is true; the
        base implementation refuses so mis-dispatch fails loudly.
        """
        raise NotImplementedError(
            f"backend {self.name!r} does not shard batch groups"
        )

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def capabilities(self) -> BackendCapabilities:
        """Static description of what this backend supports."""
        raise NotImplementedError

    def close(self) -> None:
        """Release external resources (worker pools, devices).  Idempotent."""
        self._plans.clear()

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


# ----------------------------------------------------------------------
# numpy — the fused reference engine
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FusedExecPlan(ExecPlan):
    """The fused engine's plan is the rulebook's own gather/scatter plan."""


class NumpyFusedBackend(ExecutionBackend):
    """The default backend: fused vectorized gather-GEMM-scatter.

    A thin adapter over :func:`repro.nn.functional.apply_rulebook` and
    :func:`~repro.nn.functional.apply_rulebook_batch` — the engine the
    repository validated against the seed ``np.add.at`` reference.  This
    is the arithmetic ground truth the other backends are held to.
    """

    name = "numpy"

    def prepare(self, rulebook: Rulebook) -> ExecPlan:
        plan = rulebook.plan()  # memoized on the rulebook itself
        return FusedExecPlan(
            backend=self.name, total_matches=plan.total_matches
        )

    def execute(self, rulebook, in_features, weights, num_outputs, stats=None):
        return apply_rulebook(
            rulebook, in_features, weights, num_outputs, stats=stats
        )

    def execute_batch(self, rulebook, stack, weights, num_outputs, stats=None):
        return apply_rulebook_batch(
            rulebook, stack, weights, num_outputs, stats=stats
        )

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=self.name,
            description="fused vectorized gather-GEMM-scatter (reference)",
            native_batch=True,
        )


# ----------------------------------------------------------------------
# scipy — CSR gather/scatter operators
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CsrExecPlan(ExecPlan):
    """CSR lowering of one rulebook.

    ``gather`` is a ``(total_matches, num_inputs)`` selection matrix
    (one unit entry per row, offset-major row order) and ``scatter`` a
    ``(num_outputs, total_matches)`` accumulation matrix (unit entries;
    within each output row the stored column indices ascend, i.e. run in
    offset-major order).  Multiplying them against the feature block
    reproduces the fused engine bit for bit: unit products are exact,
    and CSR row accumulation visits matches in exactly the per-offset
    order of the fused scatter loop.

    ``segment_starts`` / ``active_offsets`` drive the per-offset GEMM in
    between, identical to the fused engine's contiguous blocks.
    ``casts`` holds per-dtype copies of the operators (features may be
    float64, float32, or integer depending on session precision).
    """

    segment_starts: Optional[np.ndarray] = None
    active_offsets: Optional[Tuple[int, ...]] = None
    gather: object = None
    scatter: object = None
    casts: Dict[str, Tuple[object, object]] = field(
        default_factory=dict, repr=False
    )

    def operators(self, dtype: np.dtype) -> Tuple[object, object]:
        """The (gather, scatter) pair cast to ``dtype`` (memoized).

        Casts share the base operators' index arrays (only the unit-entry
        data array is re-typed), so materializing a precision costs one
        ``total_matches``-sized allocation instead of three copies per
        operator.  The base dtype returns the operators themselves.
        """
        key = np.dtype(dtype).str
        pair = self.casts.get(key)
        if pair is None:
            if np.dtype(dtype) == self.gather.dtype:
                pair = (self.gather, self.scatter)
            else:
                pair = (
                    _cast_operator(self.gather, dtype),
                    _cast_operator(self.scatter, dtype),
                )
            self.casts[key] = pair
        return pair


def _cast_operator(operator, dtype: np.dtype):
    """``dtype`` view of a unit-entry CSR operator, sharing its indices."""
    with_data = getattr(operator, "_with_data", None)
    if with_data is not None:
        return with_data(operator.data.astype(dtype), copy=False)
    return operator.astype(dtype)  # pragma: no cover - scipy API fallback


class ScipySparseBackend(ExecutionBackend):
    """Gather/scatter as cached CSR operators multiplied onto features.

    ``out = S @ blockdiag_gemm(G @ F)``: the gather matrix ``G`` selects
    the (offset-major) matched input rows, the per-offset GEMMs run on
    the same contiguous segments as the fused engine, and the scatter
    matrix ``S`` accumulates match contributions onto output rows.  Both
    operators have exclusively unit entries, and CSR accumulation order
    equals the fused engine's offset order, so results are bit-identical
    — asserted per precision in the parity suite.

    When scipy is not importable the backend degrades gracefully: it
    delegates to the fused numpy engine and reports
    ``capabilities().degraded``.
    """

    name = "scipy"

    def __init__(self) -> None:
        super().__init__()
        self._sparse = _scipy_sparse
        self._fallback = NumpyFusedBackend() if self._sparse is None else None
        # Splice scratch, grown geometrically and sliced per refresh.
        # ``_unit_data`` (per-dtype unit entries) and ``_unit_indptr``
        # (the 0..n ramp) are value-immutable by construction, so slices
        # of them are shared freely between refreshed plans and their
        # dtype casts; ``_row_scratch`` is only read during the
        # csc -> csr conversion and reused by the next refresh.
        self._unit_data: Dict[str, np.ndarray] = {}
        self._unit_indptr = np.zeros(0, dtype=np.int32)
        self._row_scratch = np.zeros(0, dtype=np.int32)

    def _unit_entries(self, total: int, dtype) -> np.ndarray:
        """``total`` unit entries of ``dtype`` — a slice of a shared buffer."""
        key = np.dtype(dtype).str
        buffer = self._unit_data.get(key)
        if buffer is None or len(buffer) < total:
            capacity = max(total, 2 * (0 if buffer is None else len(buffer)))
            buffer = np.ones(capacity, dtype=dtype)
            self._unit_data[key] = buffer
        return buffer[:total]

    def _splice_buffers(
        self, total: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(ones, 0..total ramp, row scratch)`` slices of grown buffers."""
        if len(self._unit_indptr) < total + 1:
            capacity = max(total + 1, 2 * len(self._unit_indptr))
            self._unit_indptr = np.arange(capacity, dtype=np.int32)
        if len(self._row_scratch) < total:
            capacity = max(total, 2 * len(self._row_scratch))
            self._row_scratch = np.empty(capacity, dtype=np.int32)
        return (
            self._unit_entries(total, np.float64),
            self._unit_indptr[: total + 1],
            self._row_scratch[:total],
        )

    @property
    def degraded(self) -> bool:
        """True when scipy is absent and the numpy engine is substituting."""
        return self._fallback is not None

    def prepare(self, rulebook: Rulebook) -> ExecPlan:
        plan = rulebook.plan()
        if self.degraded:
            return FusedExecPlan(
                backend=self.name, total_matches=plan.total_matches
            )
        total = plan.total_matches
        num_inputs = rulebook.num_inputs
        num_outputs = rulebook.num_outputs
        if total:
            operators = self._lower_operators(plan, num_inputs, num_outputs)
            if operators is None:
                operators = self._lower_operators_coo(
                    plan, num_inputs, num_outputs
                )
            gather, scatter = operators
        else:
            gather = scatter = None
        return CsrExecPlan(
            backend=self.name,
            total_matches=total,
            segment_starts=plan.segment_starts,
            active_offsets=tuple(plan.active_offsets),
            gather=gather,
            scatter=scatter,
        )

    def _lower_operators(self, plan_gs, num_inputs, num_outputs):
        """Canonical CSR lowering of a gather/scatter plan's flat arrays.

        Both the cold :meth:`prepare` and the delta splice of
        :meth:`refresh` lower through here, so a cold-prepared plan and
        a spliced plan for the same rulebook hold array-for-array
        identical operators (asserted in the test suite).  The gather
        assembles directly from the offset-major ``in_rows``; the
        scatter assembles through its trivial CSC form — one unit entry
        per column, at the match's output row, columns ascending in
        offset-major order — converted to sorted CSR in one C pass,
        skipping the COO round-trip and the per-row index sort.

        Returns ``None`` when the int32 index scratch cannot address
        ``total`` matches — callers fall back to
        :meth:`_lower_operators_coo`.
        """
        total = plan_gs.total_matches
        if total == 0 or total + 1 > np.iinfo(np.int32).max:
            return None
        ones, unit_indptr, rows32 = self._splice_buffers(total)
        position = 0
        for k in plan_gs.active_offsets:
            col = plan_gs.out_rows[k]
            rows32[position:position + len(col)] = col  # concat + cast
            position += len(col)
        in_rows32 = np.empty(total, dtype=np.int32)  # plan-owned
        in_rows32[:] = plan_gs.in_rows
        gather = self._sparse.csr_matrix(
            (ones, in_rows32, unit_indptr),
            shape=(total, max(num_inputs, 1)),
        )
        rows = max(num_outputs, 1)
        csc_tocsr = getattr(
            getattr(self._sparse, "_sparsetools", None), "csc_tocsr", None
        )
        if csc_tocsr is not None:
            scatter_indptr = np.empty(rows + 1, dtype=np.int32)
            scatter_indices = np.empty(total, dtype=np.int32)
            # Every entry is a unit, so the permuted data output equals
            # the data input — the shared ones buffer safely serves as
            # both (the kernel only ever writes 1.0 over 1.0).
            csc_tocsr(
                rows, total, unit_indptr, rows32, ones,
                scatter_indptr, scatter_indices, ones,
            )
            scatter = self._sparse.csr_matrix(
                (ones, scatter_indices, scatter_indptr),
                shape=(rows, total),
            )
        else:
            # scipy >= 1.14 dropped the standalone kernel; the public
            # conversion emits the same sorted CSR arrays.
            scatter = self._sparse.csc_matrix(
                (ones, rows32, unit_indptr), shape=(rows, total)
            ).tocsr()
        try:
            scatter.has_sorted_indices = True  # emitted sorted per row
        except (AttributeError, TypeError):  # pragma: no cover
            pass
        return gather, scatter

    def _lower_operators_coo(self, plan_gs, num_inputs, num_outputs):
        """COO-constructed operators: the fallback beyond int32 reach."""
        total = plan_gs.total_matches
        ones = np.ones(total, dtype=np.float64)
        gather = self._sparse.csr_matrix(
            (ones, plan_gs.in_rows, np.arange(total + 1)),
            shape=(total, max(num_inputs, 1)),
        )
        out_rows = np.concatenate(
            [plan_gs.out_rows[k] for k in plan_gs.active_offsets]
        )
        scatter = self._sparse.csr_matrix(
            (ones, (out_rows, np.arange(total))),
            shape=(max(num_outputs, 1), total),
        )
        scatter.sort_indices()  # offset-major accumulation order
        return gather, scatter

    def refresh(self, old_rulebook, new_rulebook, delta) -> None:
        """Splice ``delta`` into the cached CSR plan instead of re-lowering.

        When the delta engine patched ``old_rulebook`` into
        ``new_rulebook`` and this backend holds a warm
        :class:`CsrExecPlan` for the old rulebook, the new plan is
        derived from the patch's splice provenance instead of re-lowered
        from scratch: the patcher already dropped/remapped the surviving
        gather rows and scatter columns through the delta's monotone row
        maps and merged in the locally re-matched pairs, handing over
        the spliced flat arrays as a pre-seeded
        :class:`~repro.nn.rulebook.GatherScatterPlan`.  From those the
        CSR operators assemble canonically — the gather directly, the
        scatter through its trivial CSC form (one unit entry per column,
        columns already in offset-major order) converted to sorted CSR
        in one C pass — skipping the strided rule re-extraction, the COO
        round-trip, and the per-row index sort of an eager
        :meth:`prepare`.  Per-dtype operator casts the old plan had
        materialized are rebuilt over the shared index arrays.  The
        result is bit-identical to a cold :meth:`prepare` of the patched
        rulebook — asserted per precision in the test suite — at less
        than half the re-lowering cost (``results/refresh_speedup.txt``).
        Falls back to the eager base behaviour when there is nothing to
        splice (degraded mode, no warm old plan, or a plain
        :class:`CoordinateDelta` without splice provenance).
        """
        spliced = None if self.degraded else self._try_splice(
            old_rulebook, new_rulebook, delta
        )
        if spliced is None:
            super().refresh(old_rulebook, new_rulebook, delta)
            return
        self._store_plan(new_rulebook, spliced)
        self.plans_refreshed += 1
        self.plans_spliced += 1

    def _try_splice(self, old_rulebook, new_rulebook, delta):
        """The spliced :class:`CsrExecPlan`, or ``None`` to re-lower."""
        if getattr(delta, "fresh_slots", None) is None:
            return None  # plain CoordinateDelta: no splice provenance
        plan_gs = new_rulebook._plan
        if plan_gs is None:
            return None  # no spliced plan arrays to lower from
        cached = self._plans.get(id(old_rulebook))
        if cached is None or cached[0] is not old_rulebook:
            return None  # old plan not warm: nothing to refresh
        old_plan = cached[1]
        if not isinstance(old_plan, CsrExecPlan) or old_plan.scatter is None:
            return None  # degraded-era or empty plan
        total = plan_gs.total_matches
        if total == 0:
            return None  # trivial: eager re-lowering is already cheap
        # The canonical lowering shared with prepare(): spliced and
        # cold-prepared plans come out array-for-array identical.
        operators = self._lower_operators(
            plan_gs, new_rulebook.num_inputs, new_rulebook.num_outputs
        )
        if operators is None:
            return None  # beyond the int32 scratch: re-lower eagerly
        gather, scatter = operators
        plan = CsrExecPlan(
            backend=self.name,
            total_matches=total,
            segment_starts=plan_gs.segment_starts,
            active_offsets=tuple(plan_gs.active_offsets),
            gather=gather,
            scatter=scatter,
        )
        # Carry the old plan's warmed per-dtype casts over, rebuilding
        # each over the new index arrays with shared unit-entry buffers
        # (the serving loop re-materializes them every frame otherwise).
        for key in old_plan.casts:
            dtype = np.dtype(key)
            if dtype == gather.dtype:
                plan.operators(dtype)  # base pair, no data rebuild
                continue
            with_data = getattr(gather, "_with_data", None)
            if with_data is None:  # pragma: no cover - scipy API fallback
                plan.operators(dtype)
                continue
            data = self._unit_entries(total, dtype)
            plan.casts[key] = (
                gather._with_data(data, copy=False),
                scatter._with_data(data, copy=False),
            )
        return plan

    def execute(self, rulebook, in_features, weights, num_outputs, stats=None):
        if self.degraded:
            return self._fallback.execute(
                rulebook, in_features, weights, num_outputs, stats=stats
            )
        in_features = np.asarray(in_features)
        weights = np.asarray(weights)
        out_channels = weights.shape[2]
        dtype = _accumulator_dtype(in_features, weights)
        plan = self.plan_for(rulebook)
        if plan.total_matches == 0:
            return np.zeros((num_outputs, out_channels), dtype=dtype)
        gather_op, scatter_op = plan.operators(dtype)
        weights = weights.astype(dtype, copy=False)
        features = in_features.astype(dtype, copy=False)

        t0 = time.perf_counter()
        gathered = gather_op @ features
        t1 = time.perf_counter()
        contribution = np.empty(
            (plan.total_matches, out_channels), dtype=dtype
        )
        starts = plan.segment_starts
        for k in plan.active_offsets:
            np.dot(
                gathered[starts[k]:starts[k + 1]],
                weights[k],
                out=contribution[starts[k]:starts[k + 1]],
            )
        t2 = time.perf_counter()
        out = scatter_op @ contribution
        if out.shape[0] != num_outputs:  # num_outputs == 0 guard rows
            out = out[:num_outputs]
        t3 = time.perf_counter()

        if stats is not None:
            stats.matches += plan.total_matches
            stats.gather_seconds += t1 - t0
            stats.gemm_seconds += t2 - t1
            stats.scatter_seconds += t3 - t2
        return out

    def execute_batch(self, rulebook, stack, weights, num_outputs, stats=None):
        if self.degraded:
            return self._fallback.execute_batch(
                rulebook, stack, weights, num_outputs, stats=stats
            )
        stack = np.asarray(stack)
        if stack.ndim != 3:
            raise ValueError(
                f"batched features must be (B, N, Cin), got {stack.shape}"
            )
        weights = np.asarray(weights)
        batch = stack.shape[0]
        out_channels = weights.shape[2]
        dtype = _accumulator_dtype(stack, weights)
        plan = self.plan_for(rulebook)
        if plan.total_matches == 0 or batch == 0:
            return np.zeros((batch, num_outputs, out_channels), dtype=dtype)
        gather_op, scatter_op = plan.operators(dtype)
        weights = weights.astype(dtype, copy=False)
        features = stack.astype(dtype, copy=False)

        t0 = time.perf_counter()
        # One CSR gather for the whole batch: fold frames into columns,
        # (N, B*Cin), select rows, unfold back to (total, B, Cin).
        folded = np.ascontiguousarray(features.transpose(1, 0, 2)).reshape(
            stack.shape[1], batch * stack.shape[2]
        )
        gathered = (gather_op @ folded).reshape(
            plan.total_matches, batch, stack.shape[2]
        )
        t1 = time.perf_counter()
        contribution = np.empty(
            (plan.total_matches, batch, out_channels), dtype=dtype
        )
        starts = plan.segment_starts
        for k in plan.active_offsets:
            # per-frame GEMM loop (batch-sized): kept scalar on purpose so
            # each frame hits the exact single-frame BLAS call
            for b in range(batch):  # repro-lint: disable=hot-path
                # Same contiguous (n_k, Cin) @ (Cin, Cout) block as the
                # single-frame path, so per-frame bits are identical.
                contribution[starts[k]:starts[k + 1], b] = np.dot(
                    np.ascontiguousarray(gathered[starts[k]:starts[k + 1], b]),
                    weights[k],
                )
        t2 = time.perf_counter()
        scattered = scatter_op @ contribution.reshape(
            plan.total_matches, batch * out_channels
        )
        out = np.ascontiguousarray(
            scattered[:num_outputs]
            .reshape(num_outputs, batch, out_channels)
            .transpose(1, 0, 2)
        )
        t3 = time.perf_counter()

        if stats is not None:
            stats.matches += batch * plan.total_matches
            stats.gather_seconds += t1 - t0
            stats.gemm_seconds += t2 - t1
            stats.scatter_seconds += t3 - t2
        return out

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=self.name,
            description="CSR gather/scatter operators over feature blocks",
            native_batch=True,
            degraded=self.degraded,
            requires="scipy",
        )


# ----------------------------------------------------------------------
# sharded — multiprocessing fan-out of run_batch digest groups
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GroupTask:
    """One ``run_batch`` digest group: shared site set, stacked features.

    ``digest`` is the group's coordinate digest; the sharded backend
    routes on it so the same site set always lands on the same worker
    (whose plan cache is then warm for it).
    """

    coords: np.ndarray
    shape: Tuple[int, int, int]
    features: np.ndarray  # (B, N, C), raw per-frame features stacked
    digest: bytes = b""


class ShardSpecStore:
    """Shared spec/plan-seeding state for sharded and remote backends.

    Both process-pool and network fan-out speak the same contract — a
    worker is warmed from one pickled ``(net, precision, quantization)``
    blob, then executes digest groups against it — so the blob memo and
    the record of which site sets a deployment has served live *outside*
    any single backend.  Splitting this state out of
    :class:`ShardedProcessBackend` (where PR 5 grew it) is what lets a
    remote worker rejoin warm: the coordinator replays the current spec
    blob plus the recorded plan seeds, and it is also the seam for
    zero-downtime weight swaps (a new blob is a new digest; workers keep
    serving the old spec until traffic moves).

    Pickling the network is O(weight bytes); the blob is memoized behind
    two guards.  The warm path compares *pinned strong references* by
    identity (the ``plan_for`` pattern: pinning keeps the objects alive,
    so identity is O(1) and can never alias a recycled id).  On an
    identity miss the memo falls back to a *content* fingerprint (weight
    digest + settings), so a different net object with identical weights
    still reuses the blob and a swapped net always re-pickles — keying
    on bare ``id()`` without pinning was unsound: after GC a different
    net could recycle the id and the workers would silently keep serving
    the old weights.
    """

    #: Bound on recorded plan seeds: streaming workloads mint fresh site
    #: sets, so the seed registry must evict rather than grow forever.
    seed_capacity: int = 128

    def __init__(self, seed_capacity: Optional[int] = None) -> None:
        if seed_capacity is not None:
            if seed_capacity < 1:
                raise ValueError(
                    f"seed_capacity must be >= 1, got {seed_capacity}"
                )
            self.seed_capacity = int(seed_capacity)
        self._pin: Optional[Tuple[object, str, object]] = None
        self._key: Optional[Tuple] = None
        self._blob: Optional[bytes] = None
        self._digest: Optional[bytes] = None
        # digest -> (coords, shape): the site sets served under the
        # current deployment, i.e. the plans a rejoining worker should
        # re-derive before traffic reaches it.
        self._seeds: "OrderedDict[bytes, Tuple[np.ndarray, Tuple[int, ...]]]" = (
            OrderedDict()
        )

    @staticmethod
    def fingerprint(net, precision: str, quantization) -> Tuple:
        """Content key of one served spec: weight digest plus settings.

        Hashes the actual parameter payload (names, dtypes, shapes,
        bytes) and the network geometry, so the key survives garbage
        collection and id recycling — two different nets can never
        collide, and an identical-content net legitimately reuses the
        memoized blob.
        """
        digest = hashlib.blake2b(digest_size=16)
        digest.update(type(net).__name__.encode())
        digest.update(repr(getattr(net, "config", None)).encode())
        for param in net.parameters():
            value = np.ascontiguousarray(param.value)
            digest.update(
                f"{param.name}|{value.dtype}|{value.shape}".encode()
            )
            digest.update(value.tobytes())
        return (digest.digest(), precision, repr(quantization))

    @staticmethod
    def digest_of(blob: bytes) -> bytes:
        """Stable 16-byte digest identifying one spec blob on the wire."""
        return hashlib.blake2b(blob, digest_size=16).digest()

    def payload(self, net, precision: str, quantization) -> bytes:
        """The pickled ``(net, precision, quantization)`` blob, memoized.

        Warm calls with the same pinned objects return in O(1); an
        identity miss re-fingerprints the content before deciding
        whether to re-pickle (see the class docstring for why bare
        id-keying would be unsound).
        """
        pin = self._pin
        if (
            pin is not None
            and pin[0] is net
            and pin[1] == precision
            and pin[2] is quantization
            and self._blob is not None
        ):
            return self._blob
        spec_key = self.fingerprint(net, precision, quantization)
        if spec_key != self._key or self._blob is None:
            self._blob = pickle.dumps((net, precision, quantization))
            self._digest = self.digest_of(self._blob)
            self._key = spec_key
        self._pin = (net, precision, quantization)
        return self._blob

    @property
    def blob(self) -> Optional[bytes]:
        """The current spec blob (``None`` before the first payload)."""
        return self._blob

    @property
    def digest(self) -> Optional[bytes]:
        """Digest of the current spec blob (``None`` before a payload)."""
        return self._digest

    def record_seed(
        self, digest: bytes, coords: np.ndarray, shape: Tuple[int, ...]
    ) -> None:
        """Remember one served site set (LRU-bounded plan seed)."""
        self._seeds[digest] = (coords, tuple(shape))
        self._seeds.move_to_end(digest)
        while len(self._seeds) > self.seed_capacity:
            self._seeds.popitem(last=False)

    def seeds(self) -> Tuple[Tuple[bytes, np.ndarray, Tuple[int, ...]], ...]:
        """Recorded ``(digest, coords, shape)`` seeds, oldest first."""
        return tuple(
            (digest, coords, shape)
            for digest, (coords, shape) in self._seeds.items()
        )

    def clear(self) -> None:
        """Forget the memoized blob and every recorded seed."""
        self._pin = None
        self._key = None
        self._blob = None
        self._digest = None
        self._seeds.clear()


_WORKER_SESSION = None  # per-process warm session (set by the initializer)


def _sharded_worker_init(spec_blob: bytes) -> None:
    """Pool initializer: build this worker's warm private session.

    The session (and with it the plan and rulebook caches) persists for
    the lifetime of the worker process, so digest groups dispatched to
    the same worker repeatedly pay the matching cost once.
    """
    global _WORKER_SESSION
    from repro.engine.session import InferenceSession

    net, precision, quantization = pickle.loads(spec_blob)
    _WORKER_SESSION = InferenceSession(
        net=net,
        precision=precision,
        quantization=quantization,
        backend="numpy",
    )


def _sharded_worker_run(task: GroupTask) -> np.ndarray:
    """Execute one digest group on this worker's warm session."""
    from repro.sparse.coo import SparseTensor3D

    template = SparseTensor3D(task.coords, task.features[0], task.shape)
    frames = [template] + [
        template.with_features(task.features[b])
        for b in range(1, task.features.shape[0])
    ]
    outs = _WORKER_SESSION.run_batch(frames)
    return np.stack([out.features for out in outs])


class ShardedProcessBackend(ExecutionBackend):
    """Fans ``run_batch`` digest groups across a multiprocessing pool.

    Batch-level parallelism for the "millions of users" direction: each
    digest group (frames sharing one site set) is an independent unit of
    work, so groups are dispatched to worker processes, each of which
    owns a warm private session executing the fused numpy engine.
    Results are therefore bit-identical to local execution — the workers
    run exactly the same code on exactly the same arrays.

    Per-convolution :meth:`execute` / :meth:`execute_batch` calls
    delegate to the fused engine in-process (sharding is a batch
    strategy, not a kernel), so a sharded session's single-frame ``run``
    matches the numpy backend exactly as well.

    Groups are routed by coordinate digest: one single-process executor
    per worker, with a stable ``digest -> worker`` mapping, so a
    recurring site set always reaches the worker whose plan cache
    already holds it (true per-worker warm state, not pool-random
    assignment).  The workers are spawned lazily on the first group
    dispatch and rebuilt if the serving network changes; :meth:`close`
    terminates them.  A worker process that dies mid-dispatch (OOM
    kill, segfault, operator ``kill -9``) is detected via the
    executor's ``BrokenProcessPool``, its pool is rebuilt from the
    stored spec blob, and the lost groups are retried once on the fresh
    worker (counted in :attr:`pool_restarts`) — a second failure
    propagates, because a group that kills two fresh workers is the
    group's fault, not the pool's.

    The pickled spec blob and the record of served site sets live in a
    :class:`ShardSpecStore` (shared with the remote cluster backend of
    :mod:`repro.runtime.cluster`), so worker state can be replayed
    anywhere — a restarted pool here, a rejoining TCP worker there.
    """

    name = "sharded"

    def __init__(
        self,
        num_workers: int = 2,
        start_method: Optional[str] = None,
        spec_store: Optional[ShardSpecStore] = None,
    ) -> None:
        super().__init__()
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = int(num_workers)
        self.start_method = start_method
        self._inner = NumpyFusedBackend()
        self.spec_store = spec_store if spec_store is not None else ShardSpecStore()
        self._pools: Optional[List[object]] = None
        #: The spec blob the live pools were initialized with; a blob
        #: change means the served network changed and the pools rebuild.
        self._pools_blob: Optional[bytes] = None
        # Observability: how many groups/frames were fanned out, and how
        # many dead worker pools were rebuilt mid-stream.
        self.groups_dispatched = 0
        self.frames_dispatched = 0
        self.pool_restarts = 0

    def prepare(self, rulebook: Rulebook) -> ExecPlan:
        return self._inner.prepare(rulebook)

    def execute(self, rulebook, in_features, weights, num_outputs, stats=None):
        return self._inner.execute(
            rulebook, in_features, weights, num_outputs, stats=stats
        )

    def execute_batch(self, rulebook, stack, weights, num_outputs, stats=None):
        return self._inner.execute_batch(
            rulebook, stack, weights, num_outputs, stats=stats
        )

    @staticmethod
    def _spec_fingerprint(net, precision: str, quantization) -> Tuple:
        """Content key of one served spec (see :meth:`ShardSpecStore.fingerprint`)."""
        return ShardSpecStore.fingerprint(net, precision, quantization)

    def _spec_payload(self, net, precision: str, quantization) -> bytes:
        """The memoized spec blob — delegates to the shared :class:`ShardSpecStore`."""
        return self.spec_store.payload(net, precision, quantization)

    def _make_pool(self, spec_blob: bytes) -> object:
        """One addressable single-process executor, warm-started on the blob."""
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        method = self.start_method
        if method is None:
            # fork shares the parent image copy-on-write (cheap warm
            # start on Linux); fall back to the platform default.
            available = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in available else None
        context = multiprocessing.get_context(method)
        return ProcessPoolExecutor(
            max_workers=1,
            mp_context=context,
            initializer=_sharded_worker_init,
            initargs=(spec_blob,),
        )

    def _ensure_pools(self, spec_blob: bytes) -> List[object]:
        if self._pools is not None and spec_blob != self._pools_blob:
            self._shutdown_pools()
        if self._pools is None:
            # One single-process executor per worker: digest-stable
            # routing needs addressable workers, which a shared task
            # queue cannot provide.  ProcessPoolExecutor (rather than
            # multiprocessing.Pool) surfaces a killed worker as
            # BrokenProcessPool instead of hanging the result fetch.
            self._pools = [
                self._make_pool(spec_blob) for _ in range(self.num_workers)
            ]
            self._pools_blob = spec_blob
        return self._pools

    def _rebuild_pool(self, index: int) -> None:
        """Replace one dead worker executor from the stored spec blob."""
        dead = self._pools[index]
        try:
            dead.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - broken pools may refuse
            pass
        self._pools[index] = self._make_pool(self._pools_blob)
        self.pool_restarts += 1

    def _worker_index(self, task: GroupTask) -> int:
        """Stable digest -> worker mapping (warm plan affinity)."""
        digest = task.digest or task.coords.tobytes()
        return int.from_bytes(digest[:8], "little") % self.num_workers

    def run_groups(self, net, precision, quantization, groups):
        """Dispatch :class:`GroupTask` items to their affine workers.

        All groups are submitted asynchronously (groups mapped to
        different workers execute concurrently), and results are
        returned in submission order.  A worker process that died
        (``BrokenProcessPool``) has its pool rebuilt from the stored
        spec blob and the lost groups retried once on the fresh worker;
        any other worker-side exception propagates unchanged.
        """
        from concurrent.futures.process import BrokenProcessPool

        if not groups:
            return []
        pools = self._ensure_pools(
            self._spec_payload(net, precision, quantization)
        )
        for task in groups:
            self.spec_store.record_seed(
                task.digest or task.coords.tobytes(), task.coords, task.shape
            )
        self.groups_dispatched += len(groups)
        self.frames_dispatched += sum(
            task.features.shape[0] for task in groups
        )
        pending: List[Optional[object]] = []
        # Failure-handling control flow over a handful of groups, not a
        # per-element numeric path.
        for task in groups:  # repro-lint: disable=hot-path
            try:
                pending.append(
                    pools[self._worker_index(task)].submit(
                        _sharded_worker_run, task
                    )
                )
            except BrokenProcessPool:
                # The executor noticed the dead worker before we did:
                # submit refuses outright.  Same recovery as a failed
                # future.
                pending.append(None)
        results: List[Optional[np.ndarray]] = [None] * len(groups)
        lost: List[int] = []
        for position, future in enumerate(pending):  # repro-lint: disable=hot-path
            if future is None:
                lost.append(position)
                continue
            try:
                results[position] = future.result()
            except BrokenProcessPool:
                lost.append(position)
        if lost:
            # Rebuild each affected worker once, then retry its groups.
            # A retry that breaks the fresh pool too propagates: that
            # group reliably kills workers, and masking it would retry
            # forever.
            rebuilt: set = set()
            retried = []
            for position in lost:  # repro-lint: disable=hot-path
                index = self._worker_index(groups[position])
                if index not in rebuilt:
                    self._rebuild_pool(index)
                    rebuilt.add(index)
                retried.append(
                    (
                        position,
                        self._pools[index].submit(
                            _sharded_worker_run, groups[position]
                        ),
                    )
                )
            for position, future in retried:
                results[position] = future.result()
        return results

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=self.name,
            description=(
                "digest groups fanned across a multiprocessing pool of "
                "warm worker sessions"
            ),
            native_batch=True,
            sharded=True,
        )

    def _shutdown_pools(self) -> None:
        if self._pools is not None:
            for pool in self._pools:
                pool.shutdown(wait=True, cancel_futures=True)
            self._pools = None
            self._pools_blob = None

    def close(self) -> None:
        super().close()
        self._shutdown_pools()
        self.spec_store.clear()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Callable[[], ExecutionBackend]] = {}


def register_backend(
    name: str,
    factory: Callable[[], ExecutionBackend],
    overwrite: bool = False,
) -> None:
    """Register ``factory`` (class or zero-arg callable) under ``name``.

    Names are case-sensitive, non-empty strings.  Re-registering an
    existing name requires ``overwrite=True`` so typos fail loudly.
    """
    if not isinstance(name, str) or not name:
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    if name in _REGISTRY and not overwrite:
        existing = _REGISTRY[name]
        existing_name = getattr(existing, "__name__", repr(existing))
        new_name = getattr(factory, "__name__", repr(factory))
        raise ValueError(
            f"backend {name!r} is already registered to {existing_name}; "
            f"refusing to rebind it to {new_name} — pass overwrite=True "
            "to replace it"
        )
    if not callable(factory):
        raise TypeError(f"backend factory must be callable, got {factory!r}")
    _REGISTRY[name] = factory


def available_backends() -> Tuple[str, ...]:
    """Sorted names of every registered backend."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str, **kwargs) -> ExecutionBackend:
    """Instantiate the backend registered under ``name``.

    ``kwargs`` are forwarded to the factory (e.g.
    ``get_backend("sharded", num_workers=4)``).  Unknown names raise a
    :class:`ValueError` listing what is registered.
    """
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ValueError(
            f"unknown execution backend {name!r}; registered backends: "
            f"{list(available_backends())}"
        )
    backend = factory(**kwargs)
    if not isinstance(backend, ExecutionBackend):
        raise TypeError(
            f"factory for backend {name!r} returned {type(backend).__name__}, "
            "expected an ExecutionBackend"
        )
    return backend


register_backend("numpy", NumpyFusedBackend)
register_backend("scipy", ScipySparseBackend)
register_backend("sharded", ShardedProcessBackend)
