"""Sorting-based mapping operators: kNN, ball query, FPS, grouping.

The source paper accelerates the *convolution* half of point-cloud
inference; PointAcc (PAPERS.md) showed that the other half — the mapping
operations point-based networks spend their time in — reduces to one
unified sorting dataflow: bucket points by voxel cell (a radix sort over
packed cell keys), then answer every neighborhood query by merging the
handful of sorted buckets that can intersect it.  This module is the
software analogue of that datapath:

* :func:`knn` — expanding-shell search over the bucket grid.  Each round
  merges one more Chebyshev shell of buckets into the per-query candidate
  list; a query retires once its ``k``-th candidate is provably closer
  than any unscanned bucket.
* :func:`ball_query` — single-shell merge with the cell size tied to the
  query radius, capped at ``max_samples`` per query.
* :func:`farthest_point_sample` — the inherently sequential greedy picker,
  vectorized across points per iteration.
* :func:`group_points` — the gather stage: neighbor tables to dense
  ``(queries, k, channels)`` feature stacks.

Every operator returns a typed :class:`MappingResult` and is bit-identical
to its ``*_bruteforce`` reference: both paths evaluate squared distances
with the same elementwise expression, order candidates by ``(d^2, point
index)``, and pad short rows with ``-1`` indices / ``inf`` distances.
Integer inputs (voxel coordinates) are widened to float64 — exact for the
21-bit grids the packing supports — so cached results can be delta-spliced
(:mod:`repro.engine.mapping_delta`) without precision drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.sparse.hashmap import pack_coords

#: Cap on grid cells per axis; keeps packed keys in range and bounds the
#: cell-assignment rounding slop well inside the 0.5-cell retirement margin.
_MAX_CELLS_F64 = 1 << 20
_MAX_CELLS_F32 = 1 << 12


@dataclass(frozen=True)
class MappingStats:
    """Workload counters for one mapping-operator invocation.

    ``candidates`` counts (query, point) distance evaluations — the merge
    phase's work; ``matches`` counts valid entries in the result — the
    gather phase's work; ``cells`` is the occupied-bucket count of the
    sort phase; ``shells`` the number of Chebyshev shells merged (kNN).
    """

    op: str
    method: str
    num_points: int
    num_queries: int
    candidates: int
    matches: int
    cells: int
    shells: int


@dataclass(frozen=True, eq=False)
class MappingResult:
    """Typed result of a mapping operator.

    ``indices`` is ``(Q, k)`` (or ``(S,)`` for FPS) into the point array,
    padded with ``-1``; ``distances`` carries squared distances aligned
    with ``indices`` (``inf`` padding); ``counts`` the number of valid
    neighbors per query; ``grouped`` the gathered values (grouping only).
    """

    indices: np.ndarray
    distances: Optional[np.ndarray]
    counts: Optional[np.ndarray]
    grouped: Optional[np.ndarray]
    stats: MappingStats

    @property
    def op(self) -> str:
        return self.stats.op


def as_point_array(points) -> np.ndarray:
    """Coerce a point set (array or sparse tensor) to ``(N, 3)`` float rows.

    Integer voxel coordinates widen to float64, which represents the
    packable 21-bit range (and its squared distances) exactly.
    """
    pts = np.asarray(getattr(points, "coords", points))
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise ValueError(f"expected (N, 3) points, got shape {pts.shape}")
    if pts.dtype.kind != "f":
        pts = pts.astype(np.float64)
    return np.ascontiguousarray(pts)


def _pair_distances(
    queries: np.ndarray, qidx: np.ndarray, points: np.ndarray, cand: np.ndarray
) -> np.ndarray:
    """Squared distances for candidate pairs, elementwise-identical to
    :func:`_distance_matrix` so bucket and brute-force paths agree bitwise."""
    diff = queries[qidx] - points[cand]
    return (diff * diff).sum(axis=1)


def _distance_matrix(queries: np.ndarray, points: np.ndarray) -> np.ndarray:
    diff = queries[:, None, :] - points[None, :, :]
    return (diff * diff).sum(axis=2)


def _cube_offsets(radius: int) -> np.ndarray:
    axis = np.arange(-radius, radius + 1, dtype=np.int64)
    grid = np.meshgrid(axis, axis, axis, indexing="ij")
    return np.stack(grid, axis=-1).reshape(-1, 3)


def _shell_offsets(radius: int) -> np.ndarray:
    """Cells at Chebyshev distance exactly ``radius`` (the full cube at 1)."""
    cube = _cube_offsets(radius)
    if radius <= 1:
        return cube
    return cube[np.abs(cube).max(axis=1) == radius]


@dataclass(frozen=True, eq=False)
class _BucketGrid:
    """Points radix-sorted into voxel buckets — the sort phase's output."""

    origin: np.ndarray
    cell_size: float
    ncells: np.ndarray
    order: np.ndarray
    cell_keys: np.ndarray
    starts: np.ndarray

    @property
    def num_cells(self) -> int:
        return int(len(self.cell_keys))

    def mean_population(self) -> float:
        if not len(self.cell_keys):
            return 0.0
        return float(len(self.order)) / float(len(self.cell_keys))


def _max_cells(dtype: np.dtype) -> int:
    return _MAX_CELLS_F32 if dtype == np.float32 else _MAX_CELLS_F64


def _build_grid(points: np.ndarray, cell_size: float) -> _BucketGrid:
    origin = points.min(axis=0)
    limit = float(_max_cells(points.dtype) - 1)
    cells = np.clip(
        np.floor((points - origin) / points.dtype.type(cell_size)), 0.0, limit
    ).astype(np.int64)
    ncells = cells.max(axis=0) + 1
    keys = pack_coords(cells)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    fresh = np.empty(len(sorted_keys), dtype=bool)
    fresh[:1] = True
    fresh[1:] = sorted_keys[1:] != sorted_keys[:-1]
    boundaries = np.flatnonzero(fresh)
    starts = np.concatenate([boundaries, [len(sorted_keys)]])
    return _BucketGrid(
        origin=origin,
        cell_size=float(cell_size),
        ncells=ncells,
        order=order,
        cell_keys=sorted_keys[boundaries],
        starts=starts,
    )


def _query_cells(grid: _BucketGrid, queries: np.ndarray) -> np.ndarray:
    """Per-query search-center cells, clamped into the occupied grid.

    Clamping keeps far-away queries' shells anchored to the point set
    (and overflows impossible) without weakening the distance bound: on
    any clamped axis the query lies strictly outside the grid, so points
    in unscanned cells are even farther than the in-grid bound promises.
    """
    scaled = np.floor((queries - grid.origin) / queries.dtype.type(grid.cell_size))
    top = (grid.ncells - 1).astype(np.float64)
    return np.clip(scaled, 0.0, top).astype(np.int64)


def _gather_candidates(
    grid: _BucketGrid, centers: np.ndarray, offsets: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge the buckets at ``centers + offsets`` into flat candidate pairs.

    Returns ``(qidx, cand)``: for every (local) query, the indices of all
    points whose cell is one of its offset cells.  Cells outside the grid
    contribute nothing; each (query, point) pair appears at most once
    because offset cells are distinct per query.
    """
    num_queries = len(centers)
    if num_queries == 0 or grid.num_cells == 0 or len(offsets) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    cells = (centers[:, None, :] + offsets[None, :, :]).reshape(-1, 3)
    inside = ((cells >= 0) & (cells < grid.ncells[None, :])).all(axis=1)
    keys = np.full(len(cells), -1, dtype=np.int64)
    keys[inside] = pack_coords(cells[inside])
    pos = np.searchsorted(grid.cell_keys, keys)
    pos = np.minimum(pos, grid.num_cells - 1)
    found = inside & (grid.cell_keys[pos] == keys)
    bucket_start = np.where(found, grid.starts[pos], 0)
    counts = np.where(found, grid.starts[pos + 1], 0) - bucket_start
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    per_query = counts.reshape(num_queries, -1).sum(axis=1)
    qidx = np.repeat(np.arange(num_queries, dtype=np.int64), per_query)
    seg_starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    within = np.arange(total, dtype=np.int64) - np.repeat(seg_starts, counts)
    cand = grid.order[np.repeat(bucket_start, counts) + within]
    return qidx, cand


def _knn_cell_size(points: np.ndarray, k: int) -> float:
    """Cell size targeting O(k) points per 27-cell neighborhood.

    One density estimate from the bounding box, then a bounded number of
    refinements against the *measured* bucket population so lower-
    dimensional clouds (surfaces, lines) converge too.
    """
    extent = points.max(axis=0) - points.min(axis=0)
    span = float(extent.max())
    if span <= 0.0:
        return 1.0
    floor_size = span / float(_max_cells(points.dtype))
    volume = float(np.prod(np.maximum(extent, span * 1e-3)))
    target = max(1.0, float(k))
    size = max(floor_size, (volume * target / float(len(points))) ** (1.0 / 3.0))
    for _ in range(2):
        grid = _build_grid(points, size)
        mean = grid.mean_population()
        if mean <= 0.0 or 0.25 * target <= mean <= 4.0 * target:
            break
        size = max(floor_size, size * float((target / mean) ** (1.0 / 3.0)))
    return min(size, span)


def _topk_rows(
    qidx: np.ndarray,
    cand: np.ndarray,
    d2: np.ndarray,
    num_queries: int,
    k: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Sort candidate pairs by ``(query, d^2, index)`` and keep each
    query's first ``k``.  Returns the kept ``(qidx, cand, d2, rank)`` plus
    each query's k-th distance (``inf`` while fewer than ``k`` kept)."""
    order = np.lexsort((cand, d2, qidx))
    sq, sc, sd = qidx[order], cand[order], d2[order]
    counts = np.bincount(sq, minlength=num_queries)
    seg_starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    rank = np.arange(len(sq), dtype=np.int64) - seg_starts[sq]
    keep = rank < k
    sq, sc, sd, rank = sq[keep], sc[keep], sd[keep], rank[keep]
    kth = np.full(num_queries, np.inf)
    last = rank == (k - 1)
    kth[sq[last]] = sd[last]
    return sq, sc, sd, rank, kth


def knn(points, queries=None, *, k: int) -> MappingResult:
    """``k`` nearest neighbors by expanding-shell search over the grid.

    ``queries=None`` queries the point set against itself (every point is
    then its own nearest neighbor at distance 0).  Ties at equal squared
    distance resolve to the smaller point index; rows with fewer than
    ``k`` reachable points pad with ``-1`` / ``inf``.
    """
    pts = as_point_array(points)
    qs = pts if queries is None else as_point_array(queries)
    k = int(k)
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    num_queries, num_points = len(qs), len(pts)
    indices = np.full((num_queries, k), -1, dtype=np.int64)
    dists = np.full((num_queries, k), np.inf, dtype=pts.dtype)
    counts = np.full(num_queries, min(k, num_points), dtype=np.int64)
    if num_queries == 0 or num_points == 0 or k == 0:
        stats = MappingStats("knn", "bucket", num_points, num_queries, 0, 0, 0, 0)
        return MappingResult(indices, dists, counts, None, stats)

    cell_size = _knn_cell_size(pts, k)
    grid = _build_grid(pts, cell_size)
    centers = _query_cells(grid, qs)
    max_shell = int(grid.ncells.max())
    pending = np.arange(num_queries, dtype=np.int64)
    acc_q = np.empty(0, dtype=np.int64)
    acc_c = np.empty(0, dtype=np.int64)
    acc_d = np.empty(0, dtype=pts.dtype)
    examined = 0
    shell = 1
    while pending.size:
        local_q, cand = _gather_candidates(
            grid, centers[pending], _shell_offsets(shell)
        )
        examined += len(cand)
        acc_q = np.concatenate([acc_q, pending[local_q]])
        acc_c = np.concatenate([acc_c, cand])
        acc_d = np.concatenate([acc_d, _pair_distances(qs, pending[local_q], pts, cand)])
        sq, sc, sd, rank, kth = _topk_rows(acc_q, acc_c, acc_d, num_queries, k)
        # Unscanned buckets lie at Chebyshev distance > shell, hence at
        # Euclidean distance >= shell * cell_size; the half-cell margin
        # absorbs cell-assignment rounding.
        limit = ((shell - 0.5) * grid.cell_size) ** 2
        done = (kth[pending] < limit) | (shell >= max_shell)
        retired = pending[done]
        if retired.size:
            emit = np.isin(sq, retired)
            indices[sq[emit], rank[emit]] = sc[emit]
            dists[sq[emit], rank[emit]] = sd[emit]
        pending = pending[~done]
        live = np.isin(sq, pending)
        acc_q, acc_c, acc_d = sq[live], sc[live], sd[live]
        shell += 1
    stats = MappingStats(
        "knn",
        "bucket",
        num_points,
        num_queries,
        examined,
        int((indices >= 0).sum()),
        grid.num_cells,
        shell - 1,
    )
    return MappingResult(indices, dists, counts, None, stats)


def knn_bruteforce(points, queries=None, *, k: int) -> MappingResult:
    """Dense-distance-matrix reference for :func:`knn` (same contract)."""
    pts = as_point_array(points)
    qs = pts if queries is None else as_point_array(queries)
    k = int(k)
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    num_queries, num_points = len(qs), len(pts)
    indices = np.full((num_queries, k), -1, dtype=np.int64)
    dists = np.full((num_queries, k), np.inf, dtype=pts.dtype)
    counts = np.full(num_queries, min(k, num_points), dtype=np.int64)
    examined = 0
    if num_queries and num_points and k:
        d2 = _distance_matrix(qs, pts)
        examined = d2.size
        take = min(k, num_points)
        nearest = np.argsort(d2, axis=1, kind="stable")[:, :take]
        indices[:, :take] = nearest
        dists[:, :take] = np.take_along_axis(d2, nearest, axis=1)
    stats = MappingStats(
        "knn",
        "bruteforce",
        num_points,
        num_queries,
        examined,
        int((indices >= 0).sum()),
        0,
        0,
    )
    return MappingResult(indices, dists, counts, None, stats)


def _cap_rows(
    qidx: np.ndarray,
    cand: np.ndarray,
    d2: np.ndarray,
    num_queries: int,
    max_samples: int,
    dtype,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pack per-query candidate lists (sorted by point index) into dense
    ``(Q, max_samples)`` tables, ``-1`` / ``inf`` padded."""
    indices = np.full((num_queries, max_samples), -1, dtype=np.int64)
    dists = np.full((num_queries, max_samples), np.inf, dtype=dtype)
    counts = np.bincount(qidx, minlength=num_queries)
    seg_starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    rank = np.arange(len(qidx), dtype=np.int64) - seg_starts[qidx]
    keep = rank < max_samples
    indices[qidx[keep], rank[keep]] = cand[keep]
    dists[qidx[keep], rank[keep]] = d2[keep]
    return indices, dists, np.minimum(counts, max_samples).astype(np.int64)


def ball_query(points, queries=None, *, radius: float, max_samples: int) -> MappingResult:
    """Neighbors within ``radius``, in point-index order, ``max_samples`` max.

    The cell size equals the radius, so the 27-cell neighborhood of a
    query's cell covers its whole ball; one merge pass answers every
    query.  A zero radius matches only exact duplicates (and the query
    itself in self-query mode).
    """
    pts = as_point_array(points)
    qs = pts if queries is None else as_point_array(queries)
    radius = float(radius)
    max_samples = int(max_samples)
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    if max_samples < 1:
        raise ValueError(f"max_samples must be positive, got {max_samples}")
    num_queries, num_points = len(qs), len(pts)
    if num_queries == 0 or num_points == 0:
        indices = np.full((num_queries, max_samples), -1, dtype=np.int64)
        dists = np.full((num_queries, max_samples), np.inf, dtype=pts.dtype)
        stats = MappingStats(
            "ball_query", "bucket", num_points, num_queries, 0, 0, 0, 0
        )
        return MappingResult(
            indices, dists, np.zeros(num_queries, dtype=np.int64), None, stats
        )

    extent = pts.max(axis=0) - pts.min(axis=0)
    span = float(extent.max())
    floor_size = span / float(_max_cells(pts.dtype)) if span > 0 else 1.0
    cell_size = max(radius, floor_size)
    grid = _build_grid(pts, cell_size)
    qidx, cand = _gather_candidates(grid, _query_cells(grid, qs), _cube_offsets(1))
    examined = len(cand)
    d2 = _pair_distances(qs, qidx, pts, cand)
    within = d2 <= radius * radius
    qidx, cand, d2 = qidx[within], cand[within], d2[within]
    order = np.lexsort((cand, qidx))
    indices, dists, counts = _cap_rows(
        qidx[order], cand[order], d2[order], num_queries, max_samples, pts.dtype
    )
    stats = MappingStats(
        "ball_query",
        "bucket",
        num_points,
        num_queries,
        examined,
        int((indices >= 0).sum()),
        grid.num_cells,
        1,
    )
    return MappingResult(indices, dists, counts, None, stats)


def ball_query_bruteforce(
    points, queries=None, *, radius: float, max_samples: int
) -> MappingResult:
    """Dense-distance-matrix reference for :func:`ball_query`."""
    pts = as_point_array(points)
    qs = pts if queries is None else as_point_array(queries)
    radius = float(radius)
    max_samples = int(max_samples)
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    if max_samples < 1:
        raise ValueError(f"max_samples must be positive, got {max_samples}")
    num_queries, num_points = len(qs), len(pts)
    if num_queries == 0 or num_points == 0:
        indices = np.full((num_queries, max_samples), -1, dtype=np.int64)
        dists = np.full((num_queries, max_samples), np.inf, dtype=pts.dtype)
        stats = MappingStats(
            "ball_query", "bruteforce", num_points, num_queries, 0, 0, 0, 0
        )
        return MappingResult(
            indices, dists, np.zeros(num_queries, dtype=np.int64), None, stats
        )
    d2 = _distance_matrix(qs, pts)
    qidx, cand = np.nonzero(d2 <= radius * radius)
    indices, dists, counts = _cap_rows(
        qidx.astype(np.int64),
        cand.astype(np.int64),
        d2[qidx, cand],
        num_queries,
        max_samples,
        pts.dtype,
    )
    stats = MappingStats(
        "ball_query",
        "bruteforce",
        num_points,
        num_queries,
        int(d2.size),
        int((indices >= 0).sum()),
        0,
        1,
    )
    return MappingResult(indices, dists, counts, None, stats)


def farthest_point_sample(points, num_samples: int) -> MappingResult:
    """Greedy farthest-point sampling: start at index 0, then repeatedly
    take the point farthest from the selected set (ties to the smaller
    index).  Pads with ``-1`` when ``num_samples`` exceeds the points."""
    pts = as_point_array(points)
    num_samples = int(num_samples)
    if num_samples < 0:
        raise ValueError(f"num_samples must be non-negative, got {num_samples}")
    num_points = len(pts)
    indices = np.full(num_samples, -1, dtype=np.int64)
    take = min(num_samples, num_points)
    examined = 0
    if take > 0:
        indices[0] = 0
        seed_diff = pts - pts[0]
        best = (seed_diff * seed_diff).sum(axis=1)
        examined = num_points
        for step in range(1, take):
            far = int(np.argmax(best))
            indices[step] = far
            diff = pts - pts[far]
            best = np.minimum(best, (diff * diff).sum(axis=1))
            examined += num_points
    counts = np.asarray([take], dtype=np.int64)
    stats = MappingStats(
        "farthest_point_sample",
        "bucket",
        num_points,
        num_samples,
        examined,
        take,
        0,
        0,
    )
    return MappingResult(indices, None, counts, None, stats)


def farthest_point_sample_bruteforce(points, num_samples: int) -> MappingResult:
    """Reference FPS: full pairwise matrix, min over the whole selected
    set each step (no running minimum).  Same picks bit-for-bit."""
    pts = as_point_array(points)
    num_samples = int(num_samples)
    if num_samples < 0:
        raise ValueError(f"num_samples must be non-negative, got {num_samples}")
    num_points = len(pts)
    indices = np.full(num_samples, -1, dtype=np.int64)
    take = min(num_samples, num_points)
    examined = 0
    if take > 0:
        d2 = _distance_matrix(pts, pts)
        examined = d2.size
        indices[0] = 0
        for step in range(1, take):
            best = d2[:, indices[:step]].min(axis=1)
            indices[step] = int(np.argmax(best))
    counts = np.asarray([take], dtype=np.int64)
    stats = MappingStats(
        "farthest_point_sample",
        "bruteforce",
        num_points,
        num_samples,
        examined,
        take,
        0,
        0,
    )
    return MappingResult(indices, None, counts, None, stats)


def group_points(values, indices) -> MappingResult:
    """Gather ``values`` rows by a ``(Q, k)`` neighbor table; ``-1`` slots
    produce zero rows.  This is the gather phase every set-abstraction
    block runs after its neighborhood search."""
    vals = np.asarray(values)
    idx = np.asarray(indices, dtype=np.int64)
    if vals.ndim != 2:
        raise ValueError(f"expected (N, C) values, got shape {vals.shape}")
    if idx.ndim != 2:
        raise ValueError(f"expected (Q, k) indices, got shape {idx.shape}")
    if idx.size and idx.max() >= len(vals):
        raise ValueError("neighbor index out of range for the value rows")
    safe = np.where(idx < 0, 0, idx)
    grouped = vals[safe]
    grouped[idx < 0] = 0
    stats = MappingStats(
        "group_points",
        "gather",
        len(vals),
        len(idx),
        int(idx.size),
        int((idx >= 0).sum()),
        0,
        0,
    )
    return MappingResult(idx, None, None, grouped, stats)
