"""Command-line report generator: regenerate the paper's evaluation.

Usage::

    python -m repro                 # all four experiments
    python -m repro table1 fig10    # a subset
    python -m repro --seed 3 table1 # different synthetic sample
    python -m repro stream          # streaming demo via InferenceSession
    python -m repro serve           # async micro-batching serve demo
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from repro.analysis import run_fig10, run_table1, run_table2, run_table3

_EXPERIMENTS: Dict[str, Callable[[int], str]] = {
    "table1": lambda seed: run_table1(seed=seed).format(),
    "table2": lambda seed: run_table2().format(),
    "table3": lambda seed: run_table3(seed=seed).format(),
    "fig10": lambda seed: run_fig10(seed=seed).format(),
}

_TITLES = {
    "table1": "Table I — Analysis of zero removing strategy",
    "table2": "Table II — FPGA frequency and resource utilization",
    "table3": "Table III — Comparison with other implementations",
    "fig10": "Fig. 10 — Time consumption per Sub-Conv layer",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Regenerate the evaluation of 'An Efficient FPGA Accelerator "
            "for Point Cloud' (SOCC 2022)."
        ),
        epilog=(
            "The 'stream' subcommand (python -m repro stream --help) runs "
            "the streaming runtime through an InferenceSession instead; "
            "'serve' (python -m repro serve --help) runs the async "
            "micro-batching request queue."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=(
            "which artifacts to regenerate: "
            + ", ".join(sorted(_EXPERIMENTS))
            + ", or 'all' (default: all)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="synthetic-sample seed (default 0)"
    )
    return parser


def build_stream_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro stream",
        description=(
            "Stream a rotating synthetic scene through an InferenceSession "
            "and report per-frame latency plus engine statistics."
        ),
    )
    parser.add_argument(
        "--frames", type=int, default=8, help="number of frames (default 8)"
    )
    parser.add_argument(
        "--resolution", type=int, default=96,
        help="voxel grid side (default 96; the paper uses 192)",
    )
    parser.add_argument(
        "--points", type=int, default=20000,
        help="points per synthetic cloud (default 20000)",
    )
    parser.add_argument(
        "--step-rad", type=float, default=0.15,
        help="per-frame rotation in radians (default 0.15); 0 is a static "
        "scene, where every frame after the first hits the rulebook cache",
    )
    parser.add_argument(
        "--noise", type=float, default=0.001,
        help="per-frame sensor-noise sigma (default 0.001); use 0 together "
        "with --step-rad 0 for a perfectly static scene",
    )
    parser.add_argument(
        "--out-channels", type=int, default=16,
        help="Sub-Conv output channels per frame (default 16)",
    )
    parser.add_argument(
        "--detailed", action="store_true",
        help="run the cycle-accurate simulator per frame (slow) instead of "
        "the analytical model",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="scene seed (default 0)"
    )
    _add_backend_argument(parser)
    return parser


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    # Imported lazily so --help stays cheap and experiment runs stay light.
    from repro.engine import available_backends

    parser.add_argument(
        "--backend", default="numpy", choices=available_backends(),
        help="execution backend evaluating rulebooks (default numpy); all "
        "backends are bit-identical, they differ in how work is computed",
    )


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description=(
            "Serve a rotating synthetic scene through the asyncio "
            "micro-batching request queue (SessionServer) and compare "
            "sustained throughput against unbatched sequential execution."
        ),
    )
    parser.add_argument(
        "--frames", type=int, default=4,
        help="distinct scene frames (default 4)",
    )
    parser.add_argument(
        "--clients", type=int, default=4,
        help="concurrent clients submitting each frame (default 4); "
        "requests sharing a frame's voxel set batch into one digest group",
    )
    parser.add_argument(
        "--resolution", type=int, default=48,
        help="voxel grid side (default 48)",
    )
    parser.add_argument(
        "--points", type=int, default=8000,
        help="points per synthetic cloud (default 8000)",
    )
    parser.add_argument(
        "--step-rad", type=float, default=0.15,
        help="per-frame rotation in radians (default 0.15)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=16,
        help="micro-batch size cap per dispatch (default 16)",
    )
    parser.add_argument(
        "--max-delay-ms", type=float, default=2.0,
        help="dispatcher linger for stragglers in ms (default 2.0)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="skip the sequential (unbatched) baseline comparison",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="scene seed (default 0)"
    )
    _add_backend_argument(parser)
    return parser


def run_serve(argv: List[str]) -> int:
    """The ``serve`` subcommand: concurrent clients -> SessionServer."""
    import time

    from repro.engine import InferenceSession
    from repro.geometry import Voxelizer, make_shapenet_like_cloud
    from repro.runtime import RotatingSceneSource, serve_frames

    parser = build_serve_parser()
    args = parser.parse_args(argv)
    if args.frames <= 0:
        parser.error("--frames must be positive")
    if args.clients <= 0:
        parser.error("--clients must be positive")
    source = RotatingSceneSource(
        base_cloud=make_shapenet_like_cloud(seed=args.seed, n_points=args.points),
        num_frames=args.frames,
        step_rad=args.step_rad,
        seed=args.seed,
    )
    voxelizer = Voxelizer(
        resolution=args.resolution, normalize=False, occupancy_only=True
    )
    scene = [voxelizer.voxelize(cloud) for cloud in source]
    # args.clients concurrent users per frame: same voxel sets, so the
    # dispatcher's micro-batches collapse into large digest groups.
    requests = [frame for frame in scene for _ in range(args.clients)]

    session = InferenceSession(backend=args.backend)
    session.warm(scene[0])  # touch the lazy net outside the timed region
    outputs, stats = serve_frames(
        requests,
        session=session,
        concurrency=args.clients,
        max_batch=args.max_batch,
        max_delay_s=args.max_delay_ms / 1e3,
    )
    print(
        f"served {stats.requests} requests ({args.frames} frames x "
        f"{args.clients} clients) at {args.resolution}^3 via backend="
        f"{args.backend}"
    )
    print(
        f"  micro-batches:      {stats.micro_batches} "
        f"(mean size {stats.mean_batch_size:.1f}, max {stats.max_batch_size})"
    )
    print(f"  serve throughput:   {stats.fps:10.2f} frames/s")
    if not args.no_baseline:
        baseline_session = InferenceSession(backend=args.backend)
        baseline_session.warm(scene[0])
        start = time.perf_counter()
        baseline = [baseline_session.run(frame) for frame in requests]
        baseline_seconds = time.perf_counter() - start
        baseline_fps = len(requests) / baseline_seconds
        identical = all(
            out.features.dtype == ref.features.dtype
            and (out.features == ref.features).all()
            for out, ref in zip(outputs, baseline)
        )
        print(f"  sequential baseline:{baseline_fps:10.2f} frames/s")
        print(
            f"  speedup:            {stats.fps / baseline_fps:10.2f}x "
            f"(bit-identical: {'yes' if identical else 'NO'})"
        )
        if not identical:
            return 1
    return 0


def run_stream(argv: List[str]) -> int:
    """The ``stream`` subcommand: RotatingSceneSource -> InferenceSession."""
    # Imported here so `python -m repro table2` stays light.
    from repro.engine import InferenceSession
    from repro.geometry import make_shapenet_like_cloud
    from repro.runtime import RotatingSceneSource, StreamingRunner

    args = build_stream_parser().parse_args(argv)
    if args.frames <= 0:
        build_stream_parser().error("--frames must be positive")
    source = RotatingSceneSource(
        base_cloud=make_shapenet_like_cloud(seed=args.seed, n_points=args.points),
        num_frames=args.frames,
        step_rad=args.step_rad,
        noise_sigma=args.noise,
        seed=args.seed,
    )
    session = InferenceSession(backend=args.backend)
    runner = StreamingRunner(
        session=session,
        out_channels=args.out_channels,
        resolution=args.resolution,
        detailed=args.detailed,
        execute_reference=not args.detailed,
    )
    stats = runner.run(source)
    print(
        f"streamed {stats.num_frames} frames at {args.resolution}^3 "
        f"(1->{args.out_channels} Sub-Conv per frame)"
    )
    for frame in stats.frames:
        rulebook = "hit" if frame.rulebook_hits else "miss"
        if args.detailed:
            # Cycle-accurate mode performs matching inside the simulated
            # SDMU pipeline; the software rulebook cache is not on that
            # path, so a hit/miss label would be meaningless.
            rulebook = "n/a"
        print(
            f"  frame {frame.frame_id:3d}: nnz={frame.nnz:7d} "
            f"matches={frame.matches:8d} "
            f"latency={frame.total_seconds * 1e3:7.3f} ms "
            f"rulebook={rulebook}"
        )
    if args.detailed:
        hit_line = "rulebook hit rate:    n/a (cycle-accurate SDMU matching)"
    else:
        hit_line = (
            f"rulebook hit rate:    {stats.rulebook_hit_rate:10.2%} "
            f"({stats.rulebook_hits} hits, {stats.rulebook_misses} misses)"
        )
    print(
        f"sustained fps:        {stats.fps:10.1f}\n"
        f"p50 / p95 latency:    {stats.latency_percentile(50) * 1e3:7.3f} / "
        f"{stats.latency_percentile(95) * 1e3:.3f} ms\n"
        f"{hit_line}\n"
        f"matching seconds:     {stats.matching_seconds:10.6f}\n"
        f"scatter seconds:      {stats.scatter_seconds:10.6f}\n"
        f"mean effective GOPS:  {stats.mean_gops():10.2f}"
    )
    return 0


def main(argv: List[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "stream":
        return run_stream(list(argv[1:]))
    if argv and argv[0] == "serve":
        return run_serve(list(argv[1:]))
    parser = build_parser()
    args = parser.parse_args(argv)
    selected = args.experiments or ["all"]
    unknown = [name for name in selected if name not in (*_EXPERIMENTS, "all")]
    if unknown:
        subcommands = [name for name in ("stream", "serve") if name in unknown]
        if subcommands:
            names = " and ".join(f"'{name}'" for name in subcommands)
            verb = "are subcommands" if len(subcommands) > 1 else "is a subcommand"
            hint = (
                f"; note: {names} {verb} and must come first "
                "(python -m repro stream|serve [options])"
            )
        else:
            hint = ""
        parser.error(
            f"unknown experiment(s) {unknown}; choose from "
            f"{sorted(_EXPERIMENTS)} or 'all'{hint}"
        )
    if "all" in selected:
        selected = sorted(_EXPERIMENTS)
    for name in selected:
        print(f"=== {_TITLES[name]} ===")
        print(_EXPERIMENTS[name](args.seed))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
