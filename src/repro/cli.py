"""Command-line report generator: regenerate the paper's evaluation.

Usage::

    python -m repro                 # all four experiments
    python -m repro table1 fig10    # a subset
    python -m repro --seed 3 table1 # different synthetic sample
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from repro.analysis import run_fig10, run_table1, run_table2, run_table3

_EXPERIMENTS: Dict[str, Callable[[int], str]] = {
    "table1": lambda seed: run_table1(seed=seed).format(),
    "table2": lambda seed: run_table2().format(),
    "table3": lambda seed: run_table3(seed=seed).format(),
    "fig10": lambda seed: run_fig10(seed=seed).format(),
}

_TITLES = {
    "table1": "Table I — Analysis of zero removing strategy",
    "table2": "Table II — FPGA frequency and resource utilization",
    "table3": "Table III — Comparison with other implementations",
    "fig10": "Fig. 10 — Time consumption per Sub-Conv layer",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Regenerate the evaluation of 'An Efficient FPGA Accelerator "
            "for Point Cloud' (SOCC 2022)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=(
            "which artifacts to regenerate: "
            + ", ".join(sorted(_EXPERIMENTS))
            + ", or 'all' (default: all)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="synthetic-sample seed (default 0)"
    )
    return parser


def main(argv: List[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    selected = args.experiments or ["all"]
    unknown = [name for name in selected if name not in (*_EXPERIMENTS, "all")]
    if unknown:
        parser.error(
            f"unknown experiment(s) {unknown}; choose from "
            f"{sorted(_EXPERIMENTS)} or 'all'"
        )
    if "all" in selected:
        selected = sorted(_EXPERIMENTS)
    for name in selected:
        print(f"=== {_TITLES[name]} ===")
        print(_EXPERIMENTS[name](args.seed))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
