"""Command-line report generator: regenerate the paper's evaluation.

Usage::

    python -m repro                 # all four experiments
    python -m repro table1 fig10    # a subset
    python -m repro --seed 3 table1 # different synthetic sample
    python -m repro stream          # streaming demo via InferenceSession
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from repro.analysis import run_fig10, run_table1, run_table2, run_table3

_EXPERIMENTS: Dict[str, Callable[[int], str]] = {
    "table1": lambda seed: run_table1(seed=seed).format(),
    "table2": lambda seed: run_table2().format(),
    "table3": lambda seed: run_table3(seed=seed).format(),
    "fig10": lambda seed: run_fig10(seed=seed).format(),
}

_TITLES = {
    "table1": "Table I — Analysis of zero removing strategy",
    "table2": "Table II — FPGA frequency and resource utilization",
    "table3": "Table III — Comparison with other implementations",
    "fig10": "Fig. 10 — Time consumption per Sub-Conv layer",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Regenerate the evaluation of 'An Efficient FPGA Accelerator "
            "for Point Cloud' (SOCC 2022)."
        ),
        epilog=(
            "The 'stream' subcommand (python -m repro stream --help) runs "
            "the streaming runtime through an InferenceSession instead."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=(
            "which artifacts to regenerate: "
            + ", ".join(sorted(_EXPERIMENTS))
            + ", or 'all' (default: all)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="synthetic-sample seed (default 0)"
    )
    return parser


def build_stream_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro stream",
        description=(
            "Stream a rotating synthetic scene through an InferenceSession "
            "and report per-frame latency plus engine statistics."
        ),
    )
    parser.add_argument(
        "--frames", type=int, default=8, help="number of frames (default 8)"
    )
    parser.add_argument(
        "--resolution", type=int, default=96,
        help="voxel grid side (default 96; the paper uses 192)",
    )
    parser.add_argument(
        "--points", type=int, default=20000,
        help="points per synthetic cloud (default 20000)",
    )
    parser.add_argument(
        "--step-rad", type=float, default=0.15,
        help="per-frame rotation in radians (default 0.15); 0 is a static "
        "scene, where every frame after the first hits the rulebook cache",
    )
    parser.add_argument(
        "--noise", type=float, default=0.001,
        help="per-frame sensor-noise sigma (default 0.001); use 0 together "
        "with --step-rad 0 for a perfectly static scene",
    )
    parser.add_argument(
        "--out-channels", type=int, default=16,
        help="Sub-Conv output channels per frame (default 16)",
    )
    parser.add_argument(
        "--detailed", action="store_true",
        help="run the cycle-accurate simulator per frame (slow) instead of "
        "the analytical model",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="scene seed (default 0)"
    )
    return parser


def run_stream(argv: List[str]) -> int:
    """The ``stream`` subcommand: RotatingSceneSource -> InferenceSession."""
    # Imported here so `python -m repro table2` stays light.
    from repro.engine import InferenceSession
    from repro.geometry import make_shapenet_like_cloud
    from repro.runtime import RotatingSceneSource, StreamingRunner

    args = build_stream_parser().parse_args(argv)
    if args.frames <= 0:
        build_stream_parser().error("--frames must be positive")
    source = RotatingSceneSource(
        base_cloud=make_shapenet_like_cloud(seed=args.seed, n_points=args.points),
        num_frames=args.frames,
        step_rad=args.step_rad,
        noise_sigma=args.noise,
        seed=args.seed,
    )
    session = InferenceSession()
    runner = StreamingRunner(
        session=session,
        out_channels=args.out_channels,
        resolution=args.resolution,
        detailed=args.detailed,
        execute_reference=not args.detailed,
    )
    stats = runner.run(source)
    print(
        f"streamed {stats.num_frames} frames at {args.resolution}^3 "
        f"(1->{args.out_channels} Sub-Conv per frame)"
    )
    for frame in stats.frames:
        rulebook = "hit" if frame.rulebook_hits else "miss"
        if args.detailed:
            # Cycle-accurate mode performs matching inside the simulated
            # SDMU pipeline; the software rulebook cache is not on that
            # path, so a hit/miss label would be meaningless.
            rulebook = "n/a"
        print(
            f"  frame {frame.frame_id:3d}: nnz={frame.nnz:7d} "
            f"matches={frame.matches:8d} "
            f"latency={frame.total_seconds * 1e3:7.3f} ms "
            f"rulebook={rulebook}"
        )
    if args.detailed:
        hit_line = "rulebook hit rate:    n/a (cycle-accurate SDMU matching)"
    else:
        hit_line = (
            f"rulebook hit rate:    {stats.rulebook_hit_rate:10.2%} "
            f"({stats.rulebook_hits} hits, {stats.rulebook_misses} misses)"
        )
    print(
        f"sustained fps:        {stats.fps:10.1f}\n"
        f"p50 / p95 latency:    {stats.latency_percentile(50) * 1e3:7.3f} / "
        f"{stats.latency_percentile(95) * 1e3:.3f} ms\n"
        f"{hit_line}\n"
        f"matching seconds:     {stats.matching_seconds:10.6f}\n"
        f"scatter seconds:      {stats.scatter_seconds:10.6f}\n"
        f"mean effective GOPS:  {stats.mean_gops():10.2f}"
    )
    return 0


def main(argv: List[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "stream":
        return run_stream(list(argv[1:]))
    parser = build_parser()
    args = parser.parse_args(argv)
    selected = args.experiments or ["all"]
    unknown = [name for name in selected if name not in (*_EXPERIMENTS, "all")]
    if unknown:
        hint = (
            "; note: 'stream' is a subcommand and must come first "
            "(python -m repro stream [options])"
            if "stream" in unknown
            else ""
        )
        parser.error(
            f"unknown experiment(s) {unknown}; choose from "
            f"{sorted(_EXPERIMENTS)} or 'all'{hint}"
        )
    if "all" in selected:
        selected = sorted(_EXPERIMENTS)
    for name in selected:
        print(f"=== {_TITLES[name]} ===")
        print(_EXPERIMENTS[name](args.seed))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
