"""Command-line report generator: regenerate the paper's evaluation.

Usage::

    python -m repro                 # all four experiments
    python -m repro table1 fig10    # a subset
    python -m repro --seed 3 table1 # different synthetic sample
    python -m repro stream          # streaming demo via InferenceSession
    python -m repro serve           # async micro-batching serve demo
    python -m repro serve --cluster 2   # loopback worker-fleet serve demo
    python -m repro worker --port 0 # one cluster worker node
    python -m repro points          # point-based net via the mapping ops
    python -m repro lint            # AST-based invariant analyzer
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from repro.analysis import run_fig10, run_table1, run_table2, run_table3

_EXPERIMENTS: Dict[str, Callable[[int], str]] = {
    "table1": lambda seed: run_table1(seed=seed).format(),
    "table2": lambda seed: run_table2().format(),
    "table3": lambda seed: run_table3(seed=seed).format(),
    "fig10": lambda seed: run_fig10(seed=seed).format(),
}

_TITLES = {
    "table1": "Table I — Analysis of zero removing strategy",
    "table2": "Table II — FPGA frequency and resource utilization",
    "table3": "Table III — Comparison with other implementations",
    "fig10": "Fig. 10 — Time consumption per Sub-Conv layer",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Regenerate the evaluation of 'An Efficient FPGA Accelerator "
            "for Point Cloud' (SOCC 2022)."
        ),
        epilog=(
            "The 'stream' subcommand (python -m repro stream --help) runs "
            "the streaming runtime through an InferenceSession instead; "
            "'serve' (python -m repro serve --help) runs the async "
            "micro-batching request queue (add --cluster N for the loopback "
            "worker-fleet demo); 'worker' (python -m repro worker --help) "
            "runs one cluster worker node; 'points' (python -m repro points "
            "--help) serves a point-based network through the mapping-ops "
            "subsystem; 'lint' (python -m repro lint "
            "--help) runs the repo's AST-based invariant analyzer."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=(
            "which artifacts to regenerate: "
            + ", ".join(sorted(_EXPERIMENTS))
            + ", or 'all' (default: all)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="synthetic-sample seed (default 0)"
    )
    return parser


def build_stream_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro stream",
        description=(
            "Stream a rotating synthetic scene through an InferenceSession "
            "and report per-frame latency plus engine statistics."
        ),
    )
    parser.add_argument(
        "--frames", type=int, default=8, help="number of frames (default 8)"
    )
    parser.add_argument(
        "--resolution", type=int, default=96,
        help="voxel grid side (default 96; the paper uses 192)",
    )
    parser.add_argument(
        "--points", type=int, default=20000,
        help="points per synthetic cloud (default 20000)",
    )
    parser.add_argument(
        "--step-rad", type=float, default=0.15,
        help="per-frame rotation in radians (default 0.15); 0 is a static "
        "scene, where every frame after the first hits the rulebook cache",
    )
    parser.add_argument(
        "--noise", type=float, default=0.001,
        help="per-frame sensor-noise sigma (default 0.001); use 0 together "
        "with --step-rad 0 for a perfectly static scene",
    )
    parser.add_argument(
        "--out-channels", type=int, default=16,
        help="Sub-Conv output channels per frame (default 16)",
    )
    parser.add_argument(
        "--detailed", action="store_true",
        help="run the cycle-accurate simulator per frame (slow) instead of "
        "the analytical model",
    )
    parser.add_argument(
        "--scene", choices=("rotating", "drifting"), default="rotating",
        help="frame source: 'rotating' (spinning-LiDAR view of a static "
        "object) or 'drifting' (nearly-static scene with per-frame voxel "
        "churn, the delta-matching regime)",
    )
    parser.add_argument(
        "--churn", type=float, default=0.02,
        help="drifting scene only: fraction of points re-scattered per "
        "frame (default 0.02)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="scene seed (default 0)"
    )
    _add_backend_argument(parser)
    _add_delta_argument(parser)
    return parser


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend", default="numpy",
        help="execution backend evaluating rulebooks (default numpy); all "
        "backends are bit-identical, they differ in how work is computed",
    )


# Bare-flag sentinel for --delta.  Deliberately not a float (so no
# user-typed value can collide with it) and not a string (argparse
# would run string consts through type=float).
_DELTA_DEFAULT = object()


def _add_delta_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--delta", type=float, nargs="?", const=_DELTA_DEFAULT, default=None,
        metavar="THRESHOLD",
        help="enable incremental rulebook patching for near-match frames; "
        "optional churn-ratio threshold in (0, 1] (bare --delta uses the "
        "engine default)",
    )


def _resolve_backend(parser: argparse.ArgumentParser, name: str) -> str:
    """Fail fast on unknown backend names, listing what is registered.

    The registry is openly extensible, so the choice set cannot be
    frozen into the parser at build time; validating here keeps the
    error at the command line (with the full list in the message)
    instead of surfacing later from the registry deep inside session
    construction.
    """
    import repro.runtime  # noqa: F401  (registers the "remote" backend)
    from repro.engine import available_backends

    if name not in available_backends():
        parser.error(
            f"unknown execution backend {name!r}; available backends: "
            f"{list(available_backends())}"
        )
    return name


def _resolve_delta(parser: argparse.ArgumentParser, value):
    """Map the CLI --delta form onto the InferenceSession delta= knob."""
    if value is None:
        return None
    if value is _DELTA_DEFAULT:  # bare --delta: the engine default threshold
        return True
    if not 0.0 < value <= 1.0:
        parser.error(
            f"--delta threshold must lie in (0, 1], got {value}"
        )
    return value


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description=(
            "Serve a rotating synthetic scene through the asyncio "
            "micro-batching request queue (SessionServer) and compare "
            "sustained throughput against unbatched sequential execution."
        ),
    )
    parser.add_argument(
        "--frames", type=int, default=4,
        help="distinct scene frames (default 4)",
    )
    parser.add_argument(
        "--clients", type=int, default=4,
        help="concurrent clients submitting each frame (default 4); "
        "requests sharing a frame's voxel set batch into one digest group",
    )
    parser.add_argument(
        "--resolution", type=int, default=48,
        help="voxel grid side (default 48)",
    )
    parser.add_argument(
        "--points", type=int, default=8000,
        help="points per synthetic cloud (default 8000)",
    )
    parser.add_argument(
        "--step-rad", type=float, default=0.15,
        help="per-frame rotation in radians (default 0.15)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=16,
        help="micro-batch size cap per dispatch (default 16)",
    )
    parser.add_argument(
        "--max-delay-ms", type=float, default=2.0,
        help="dispatcher linger for stragglers in ms (default 2.0)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="skip the sequential (unbatched) baseline comparison",
    )
    parser.add_argument(
        "--max-pending", type=int, default=None,
        help="backpressure: bound on accepted-but-unserved requests; "
        "submissions beyond it fail fast with ServerOverloaded "
        "(default: unbounded)",
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=None,
        help="backpressure: per-request queueing deadline in ms; requests "
        "dispatched past it are rejected with DeadlineExceeded "
        "(default: none)",
    )
    parser.add_argument(
        "--cluster", type=int, default=None, metavar="N",
        help="spawn N loopback worker processes and serve through the "
        "'remote' cluster backend instead of an in-process one; runs the "
        "drifting-scene demo, verifies bit-identity against the in-process "
        "numpy session, and reports cluster vs single-node throughput",
    )
    parser.add_argument(
        "--churn", type=float, default=0.02,
        help="cluster demo only: per-frame point churn of the drifting "
        "scene (default 0.02)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="scene seed (default 0)"
    )
    parser.add_argument(
        "--metrics-port", type=int, default=None, metavar="P",
        help="expose Prometheus metrics for the run on "
        "http://127.0.0.1:P/metrics — one registry shared by the "
        "session, the server, and (with --cluster) the cluster "
        "backend; 0 picks an ephemeral port",
    )
    parser.add_argument(
        "--trace-dump", type=str, default=None, metavar="PATH",
        help="after serving, write the recent per-micro-batch stage "
        "timelines (queue-wait/linger/execute/respond) as JSON to PATH",
    )
    _add_backend_argument(parser)
    _add_delta_argument(parser)
    return parser


def _obs_setup(args):
    """Shared registry/tracer (and HTTP endpoint) for ``serve``.

    Returns ``(registry, tracer, endpoint)`` — all ``None`` when
    neither ``--metrics-port`` nor ``--trace-dump`` was given, so the
    plain demo keeps its per-component private registries.
    """
    if args.metrics_port is None and args.trace_dump is None:
        return None, None, None
    from repro.obs import MetricRegistry, MetricsHTTPServer, Tracer

    registry = MetricRegistry()
    tracer = Tracer()
    endpoint = None
    if args.metrics_port is not None:
        endpoint = MetricsHTTPServer(
            registry, port=args.metrics_port, tracer=tracer
        ).start()
        print(f"metrics endpoint: {endpoint.url}")
    return registry, tracer, endpoint


def _obs_teardown(args, tracer, endpoint) -> None:
    if tracer is not None and args.trace_dump is not None:
        tracer.dump_to(args.trace_dump)
        print(f"  traces dumped to:   {args.trace_dump}")
    if endpoint is not None:
        endpoint.stop()


def _run_serve_cluster(parser: argparse.ArgumentParser, args) -> int:
    """The ``serve --cluster N`` demo: a loopback worker fleet.

    Spawns N ``python -m repro worker`` subprocesses, serves a drifting
    scene through a :class:`SessionServer` whose session fans digest
    groups out over the ``remote`` backend, verifies every served output
    bit-for-bit against an in-process numpy session, and prints cluster
    vs single-node serve throughput.  Exits nonzero when the
    bit-identity verification fails, so CI can gate on it.
    """
    import time

    from repro.engine import InferenceSession
    from repro.geometry import Voxelizer, make_shapenet_like_cloud
    from repro.runtime import (
        DriftingSceneSource,
        LocalWorkerFleet,
        RemoteShardBackend,
        serve_frames,
    )

    source = DriftingSceneSource(
        base_cloud=make_shapenet_like_cloud(
            seed=args.seed, n_points=args.points
        ),
        num_frames=args.frames,
        churn=args.churn,
        seed=args.seed,
    )
    voxelizer = Voxelizer(
        resolution=args.resolution, normalize=False, occupancy_only=True
    )
    scene = [voxelizer.voxelize(cloud) for cloud in source]
    requests = [frame for frame in scene for _ in range(args.clients)]

    registry, tracer, endpoint = _obs_setup(args)
    fleet = LocalWorkerFleet.spawn(args.cluster)
    backend = RemoteShardBackend(workers=fleet.addresses, registry=registry)
    try:
        session = InferenceSession(backend=backend, registry=registry)
        session.warm(scene[0])
        outputs, stats = serve_frames(
            requests,
            session=session,
            concurrency=args.clients,
            max_batch=args.max_batch,
            max_delay_s=args.max_delay_ms / 1e3,
            registry=registry,
            tracer=tracer,
        )
        # Single-node comparison: the same serve loop over an
        # in-process numpy session (same micro-batching, no fan-out).
        single = InferenceSession(backend="numpy")
        single.warm(scene[0])
        _, single_stats = serve_frames(
            requests,
            session=single,
            concurrency=args.clients,
            max_batch=args.max_batch,
            max_delay_s=args.max_delay_ms / 1e3,
        )
        # Bit-identity referee: sequential in-process numpy runs.
        reference = InferenceSession(backend="numpy")
        reference.warm(scene[0])
        start = time.perf_counter()
        baseline = [reference.run(frame) for frame in requests]
        sequential_seconds = time.perf_counter() - start
        identical = all(
            out is not None
            and out.features.dtype == ref.features.dtype
            and (out.features == ref.features).all()
            for out, ref in zip(outputs, baseline)
        )
        cluster_stats = backend.stats
        print(
            f"served {stats.requests} requests ({args.frames} frames x "
            f"{args.clients} clients) at {args.resolution}^3 via a "
            f"{args.cluster}-worker loopback cluster (drifting scene, "
            f"churn {args.churn})"
        )
        print(
            f"  micro-batches:      {stats.micro_batches} "
            f"(mean size {stats.mean_batch_size:.1f}, "
            f"max {stats.max_batch_size})"
        )
        print(
            f"  cluster routing:    {cluster_stats.groups_dispatched} groups "
            f"/ {cluster_stats.frames_dispatched} frames dispatched, "
            f"{cluster_stats.spec_syncs} spec syncs, "
            f"{cluster_stats.workers_lost} workers lost, "
            f"{cluster_stats.groups_rerouted} groups rerouted"
        )
        print(f"  cluster serve:      {stats.fps:10.2f} frames/s")
        print(f"  single-node serve:  {single_stats.fps:10.2f} frames/s")
        print(
            f"  sequential numpy:   "
            f"{len(requests) / sequential_seconds:10.2f} frames/s"
        )
        verdict = "yes" if identical else "NO"
        ratio = stats.fps / single_stats.fps if single_stats.fps else 0.0
        print(
            f"  cluster vs single:  {ratio:10.2f}x "
            f"(bit-identical: {verdict})"
        )
        if not identical:
            return 1
        return 0
    finally:
        _obs_teardown(args, tracer, endpoint)
        backend.close()
        fleet.terminate()


def run_serve(argv: List[str]) -> int:
    """The ``serve`` subcommand: concurrent clients -> SessionServer."""
    import time

    from repro.engine import InferenceSession
    from repro.geometry import Voxelizer, make_shapenet_like_cloud
    from repro.runtime import RotatingSceneSource, serve_frames

    parser = build_serve_parser()
    args = parser.parse_args(argv)
    if args.frames <= 0:
        parser.error("--frames must be positive")
    if args.clients <= 0:
        parser.error("--clients must be positive")
    if args.metrics_port is not None and not 0 <= args.metrics_port < 65536:
        parser.error("--metrics-port must lie in [0, 65535]")
    if args.cluster is not None:
        if args.cluster < 1:
            parser.error("--cluster must be >= 1")
        if not 0.0 <= args.churn <= 1.0:
            parser.error("--churn must lie in [0, 1]")
        if args.backend != "numpy":
            parser.error(
                "--cluster serves through the 'remote' backend; drop "
                "--backend"
            )
        if args.delta is not None:
            parser.error("--cluster does not take --delta")
        return _run_serve_cluster(parser, args)
    backend = _resolve_backend(parser, args.backend)
    delta = _resolve_delta(parser, args.delta)
    if args.max_pending is not None and args.max_pending < 1:
        parser.error("--max-pending must be >= 1")
    if args.deadline_ms is not None and args.deadline_ms <= 0:
        parser.error("--deadline-ms must be positive")
    source = RotatingSceneSource(
        base_cloud=make_shapenet_like_cloud(seed=args.seed, n_points=args.points),
        num_frames=args.frames,
        step_rad=args.step_rad,
        seed=args.seed,
    )
    voxelizer = Voxelizer(
        resolution=args.resolution, normalize=False, occupancy_only=True
    )
    scene = [voxelizer.voxelize(cloud) for cloud in source]
    # args.clients concurrent users per frame: same voxel sets, so the
    # dispatcher's micro-batches collapse into large digest groups.
    requests = [frame for frame in scene for _ in range(args.clients)]

    registry, tracer, endpoint = _obs_setup(args)
    session = InferenceSession(backend=backend, delta=delta, registry=registry)
    session.warm(scene[0])  # touch the lazy net outside the timed region
    outputs, stats = serve_frames(
        requests,
        session=session,
        concurrency=args.clients,
        max_batch=args.max_batch,
        max_delay_s=args.max_delay_ms / 1e3,
        max_pending=args.max_pending,
        deadline_s=None if args.deadline_ms is None else args.deadline_ms / 1e3,
        registry=registry,
        tracer=tracer,
    )
    print(
        f"served {stats.requests} requests ({args.frames} frames x "
        f"{args.clients} clients) at {args.resolution}^3 via backend="
        f"{backend}"
    )
    print(
        f"  micro-batches:      {stats.micro_batches} "
        f"(mean size {stats.mean_batch_size:.1f}, max {stats.max_batch_size})"
    )
    rejected = stats.rejected_overload + stats.rejected_deadline
    if args.max_pending is not None or args.deadline_ms is not None:
        print(
            f"  rejected:           {rejected} "
            f"({stats.rejected_overload} overload, "
            f"{stats.rejected_deadline} deadline)"
        )
    if delta is not None:
        s = session.stats
        print(
            f"  delta matching:     {s.delta_patches} patches, "
            f"{s.delta_rebuilds} rebuilds"
        )
        print(
            f"  plan refreshes:     {s.plans_refreshed} "
            f"({s.plans_spliced} spliced, "
            f"{s.plans_refreshed - s.plans_spliced} re-lowered)"
        )
    serve_fps = stats.fps if stats.requests else 0.0
    print(f"  serve throughput:   {serve_fps:10.2f} frames/s")
    _obs_teardown(args, tracer, endpoint)
    if not args.no_baseline:
        baseline_session = InferenceSession(backend=backend, delta=delta)
        baseline_session.warm(scene[0])
        start = time.perf_counter()
        baseline = [baseline_session.run(frame) for frame in requests]
        baseline_seconds = time.perf_counter() - start
        baseline_fps = len(requests) / baseline_seconds
        served = [
            (out, ref)
            for out, ref in zip(outputs, baseline)
            if out is not None  # rejected under backpressure
        ]
        identical = all(
            out.features.dtype == ref.features.dtype
            and (out.features == ref.features).all()
            for out, ref in served
        )
        verdict = "yes" if identical else "NO"
        if not served:
            # Nothing was compared; an empty all() must not masquerade
            # as a bit-identity pass.
            verdict = "n/a, every request was rejected"
        print(f"  sequential baseline:{baseline_fps:10.2f} frames/s")
        print(
            f"  speedup:            {serve_fps / baseline_fps:10.2f}x "
            f"(bit-identical: {verdict})"
        )
        if served and not identical:
            return 1
    return 0


def run_stream(argv: List[str]) -> int:
    """The ``stream`` subcommand: scene source -> InferenceSession."""
    # Imported here so `python -m repro table2` stays light.
    from repro.engine import InferenceSession
    from repro.geometry import make_shapenet_like_cloud
    from repro.runtime import (
        DriftingSceneSource,
        RotatingSceneSource,
        StreamingRunner,
    )

    parser = build_stream_parser()
    args = parser.parse_args(argv)
    if args.frames <= 0:
        parser.error("--frames must be positive")
    backend = _resolve_backend(parser, args.backend)
    delta = _resolve_delta(parser, args.delta)
    base_cloud = make_shapenet_like_cloud(seed=args.seed, n_points=args.points)
    if args.scene == "drifting":
        if not 0.0 <= args.churn <= 1.0:
            parser.error("--churn must lie in [0, 1]")
        source = DriftingSceneSource(
            base_cloud=base_cloud,
            num_frames=args.frames,
            churn=args.churn,
            seed=args.seed,
        )
    else:
        source = RotatingSceneSource(
            base_cloud=base_cloud,
            num_frames=args.frames,
            step_rad=args.step_rad,
            noise_sigma=args.noise,
            seed=args.seed,
        )
    session = InferenceSession(backend=backend, delta=delta)
    runner = StreamingRunner(
        session=session,
        out_channels=args.out_channels,
        resolution=args.resolution,
        detailed=args.detailed,
        execute_reference=not args.detailed,
    )
    stats = runner.run(source)
    print(
        f"streamed {stats.num_frames} frames at {args.resolution}^3 "
        f"(1->{args.out_channels} Sub-Conv per frame, {args.scene} scene)"
    )
    for frame in stats.frames:
        rulebook = "hit" if frame.rulebook_hits else "miss"
        if frame.rulebook_patches:
            rulebook = "patch"
        if args.detailed:
            # Cycle-accurate mode performs matching inside the simulated
            # SDMU pipeline; the software rulebook cache is not on that
            # path, so a hit/miss label would be meaningless.
            rulebook = "n/a"
        print(
            f"  frame {frame.frame_id:3d}: nnz={frame.nnz:7d} "
            f"matches={frame.matches:8d} "
            f"latency={frame.total_seconds * 1e3:7.3f} ms "
            f"rulebook={rulebook}"
        )
    if args.detailed:
        hit_line = "rulebook hit rate:    n/a (cycle-accurate SDMU matching)"
    else:
        hit_line = (
            f"rulebook hit rate:    {stats.rulebook_hit_rate:10.2%} "
            f"({stats.rulebook_hits} hits, {stats.rulebook_misses} misses)"
        )
    if delta is not None and not args.detailed:
        session_stats = session.stats
        hit_line += (
            f"\ndelta matching:       {session_stats.delta_patches} patches, "
            f"{session_stats.delta_rebuilds} rebuilds "
            f"(threshold {session.delta_threshold:.2f})"
            f"\nplan refreshes:       {session_stats.plans_refreshed} "
            f"({session_stats.plans_spliced} spliced, "
            f"{session_stats.plans_refreshed - session_stats.plans_spliced} "
            "re-lowered)"
        )
    print(
        f"sustained fps:        {stats.fps:10.1f}\n"
        f"p50 / p95 latency:    {stats.latency_percentile(50) * 1e3:7.3f} / "
        f"{stats.latency_percentile(95) * 1e3:.3f} ms\n"
        f"{hit_line}\n"
        f"matching seconds:     {stats.matching_seconds:10.6f}\n"
        f"scatter seconds:      {stats.scatter_seconds:10.6f}\n"
        f"mean effective GOPS:  {stats.mean_gops():10.2f}"
    )
    return 0


def build_worker_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro worker",
        description=(
            "Run one cluster worker node: a TCP endpoint hosting a warm "
            "InferenceSession per synced net-spec digest, serving "
            "EXECUTE_BATCH digest groups to a RemoteShardBackend "
            "coordinator (see docs/cluster.md)."
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port to listen on (default 0 = ephemeral; the bound "
        "port is announced on stdout as 'repro-worker ready ... port=P')",
    )
    parser.add_argument(
        "--max-sessions", type=int, default=4,
        help="warm spec-digest sessions to keep (LRU, default 4); during "
        "a weight swap the old and new digests serve concurrently",
    )
    return parser


def run_worker(argv: List[str]) -> int:
    """The ``worker`` subcommand: one cluster serving node."""
    import asyncio

    from repro.runtime.worker import serve_worker

    parser = build_worker_parser()
    args = parser.parse_args(argv)
    if not 0 <= args.port <= 65535:
        parser.error(f"--port must lie in [0, 65535], got {args.port}")
    if args.max_sessions < 1:
        parser.error("--max-sessions must be >= 1")

    def announce(line: str) -> None:
        print(line, flush=True)

    try:
        asyncio.run(
            serve_worker(
                host=args.host,
                port=args.port,
                max_sessions=args.max_sessions,
                announce=announce,
            )
        )
    except KeyboardInterrupt:
        pass
    return 0


def build_points_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro points",
        description=(
            "Serve a point-based (PointNet++-style) classifier over a "
            "drifting voxel scene through the mapping-ops subsystem: "
            "sorting-based kNN/ball-query/FPS with cached, delta-patched "
            "neighbor tables."
        ),
    )
    parser.add_argument(
        "--frames", type=int, default=6, help="frames to serve (default 6)"
    )
    parser.add_argument(
        "--points",
        type=int,
        default=6000,
        help="synthetic cloud size before voxelization (default 6000)",
    )
    parser.add_argument(
        "--resolution",
        type=int,
        default=96,
        help="voxel grid resolution per axis (default 96)",
    )
    parser.add_argument(
        "--churn",
        type=float,
        default=0.01,
        help="per-frame point churn of the drifting scene (default 0.01)",
    )
    parser.add_argument(
        "--neighbors",
        type=int,
        default=8,
        help="kNN neighborhood size of the set-abstraction blocks "
        "(default 8)",
    )
    parser.add_argument(
        "--delta",
        type=float,
        default=0.25,
        help="mapping-delta churn threshold in (0, 1]; 0 disables "
        "splicing and leaves the digest-only cache (default 0.25)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="scene/weight seed (default 0)"
    )
    return parser


def run_points(argv: List[str]) -> int:
    """The ``points`` subcommand: drifting scene -> mapping subsystem."""
    # Imported here so `python -m repro table2` stays light.
    import time

    from repro.engine import InferenceSession
    from repro.geometry.synthetic import make_shapenet_like_cloud
    from repro.geometry.voxelizer import Voxelizer
    from repro.nn import PointNetClassifier, PointNetConfig
    from repro.runtime import DriftingSceneSource

    parser = build_points_parser()
    args = parser.parse_args(argv)
    if args.frames <= 0:
        parser.error("--frames must be positive")
    if not 0.0 <= args.churn <= 1.0:
        parser.error("--churn must lie in [0, 1]")
    if not 0.0 <= args.delta <= 1.0:
        parser.error("--delta must lie in [0, 1]")
    cloud = make_shapenet_like_cloud(seed=args.seed, n_points=args.points)
    source = DriftingSceneSource(
        base_cloud=cloud,
        num_frames=args.frames,
        churn=args.churn,
        seed=args.seed,
    )
    voxelizer = Voxelizer(
        resolution=args.resolution, normalize=False, occupancy_only=True
    )
    net = PointNetClassifier(
        PointNetConfig(neighbors=args.neighbors, seed=args.seed)
    )
    session = InferenceSession(
        net=net, delta=args.delta if args.delta > 0 else False
    )
    tensors = [voxelizer.voxelize(frame) for frame in source]
    for frame_id, tensor in enumerate(tensors):
        start = time.perf_counter()
        logits = session.run(tensor)
        # A self-query neighbor table per frame (the segmentation-style
        # workload): on a drifting scene this is where the delta cache
        # splices instead of rebuilding.
        table = session.map("knn", tensor, k=args.neighbors)
        elapsed = time.perf_counter() - start
        print(
            f"  frame {frame_id:3d}: nnz={tensor.nnz:7d} "
            f"class={int(logits.argmax()):2d} "
            f"knn={table.stats.method:<11s} "
            f"latency={elapsed * 1e3:7.3f} ms"
        )
    estimate = session.estimate(tensors[-1])
    s = session.stats
    print(
        f"served {s.frames_run} point-based frames at "
        f"{args.resolution}^3 ({len(net.blocks)} set-abstraction stages, "
        f"{args.neighbors} neighbors)\n"
        f"mapping cache:        {s.mapping_hits} hits, "
        f"{s.mapping_misses} misses\n"
        f"delta splicing:       {s.mapping_patches} patches, "
        f"{s.mapping_rebuilds} rebuilds "
        f"(threshold {args.delta:.2f})\n"
        f"modeled mapping cost: {estimate.total_mapping_cycles} cycles "
        f"({estimate.mapping_seconds * 1e3:.3f} ms on the modeled clock)"
    )
    return 0


def main(argv: List[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "stream":
        return run_stream(list(argv[1:]))
    if argv and argv[0] == "serve":
        return run_serve(list(argv[1:]))
    if argv and argv[0] == "worker":
        return run_worker(list(argv[1:]))
    if argv and argv[0] == "points":
        return run_points(list(argv[1:]))
    if argv and argv[0] == "lint":
        from repro.lint.cli import main as lint_main

        return lint_main(list(argv[1:]))
    parser = build_parser()
    args = parser.parse_args(argv)
    selected = args.experiments or ["all"]
    unknown = [name for name in selected if name not in (*_EXPERIMENTS, "all")]
    if unknown:
        subcommands = [
            name
            for name in ("stream", "serve", "worker", "points", "lint")
            if name in unknown
        ]
        if subcommands:
            names = " and ".join(f"'{name}'" for name in subcommands)
            verb = "are subcommands" if len(subcommands) > 1 else "is a subcommand"
            hint = (
                f"; note: {names} {verb} and must come first "
                "(python -m repro stream|serve|worker|points|lint [options])"
            )
        else:
            hint = ""
        parser.error(
            f"unknown experiment(s) {unknown}; choose from "
            f"{sorted(_EXPERIMENTS)} or 'all'{hint}"
        )
    if "all" in selected:
        selected = sorted(_EXPERIMENTS)
    for name in selected:
        print(f"=== {_TITLES[name]} ===")
        print(_EXPERIMENTS[name](args.seed))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
