"""Clocked simulation kernel used by the cycle-accurate accelerator model.

The kernel is deliberately small: the ESCA architecture is a short
producer/consumer pipeline (SDMU -> FIFO group -> MUX -> computing core),
so the substrate only needs synchronous components, bounded FIFOs with
backpressure, a cycle loop, and statistics.

Components follow a two-phase clock discipline:

* :meth:`Component.compute` — combinational phase; a component may inspect
  any state but must only *stage* updates.
* :meth:`Component.commit` — sequential phase; staged updates become
  visible.

This mirrors synchronous RTL semantics and removes any dependence on the
order in which components are registered.
"""

from repro.sim.kernel import Component, SimulationError, SimulationKernel
from repro.sim.fifo import FifoStats, HardwareFifo
from repro.sim.trace import CycleTrace, StatsCounter, Utilization

__all__ = [
    "Component",
    "SimulationKernel",
    "SimulationError",
    "HardwareFifo",
    "FifoStats",
    "CycleTrace",
    "StatsCounter",
    "Utilization",
]
