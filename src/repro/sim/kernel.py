"""Two-phase clocked simulation kernel.

The kernel advances a set of :class:`Component` objects cycle by cycle.
Every cycle has two phases:

1. ``compute`` — each component reads the *committed* state of the system
   and stages its own updates.
2. ``commit`` — each component makes its staged updates visible.

Because reads happen against committed state only, the result of a cycle
does not depend on component registration order, exactly as in synchronous
hardware where all flip-flops sample their inputs on the same clock edge.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional


class SimulationError(RuntimeError):
    """Raised when a simulation invariant is violated."""


class Component:
    """Base class for clocked components.

    Subclasses override :meth:`compute` and :meth:`commit`.  A component
    reports completion through :meth:`is_idle`; the kernel stops when every
    component is idle.
    """

    name: str = "component"

    def compute(self, cycle: int) -> None:
        """Combinational phase: read committed state, stage updates."""

    def commit(self, cycle: int) -> None:
        """Sequential phase: make staged updates visible."""

    def is_idle(self) -> bool:
        """Return ``True`` when the component has no pending work."""
        return True

    def reset(self) -> None:
        """Return the component to its power-on state."""


class SimulationKernel:
    """Cycle loop driving a collection of :class:`Component` objects.

    Parameters
    ----------
    components:
        Components to advance each cycle.  Order is irrelevant for
        correctness thanks to the two-phase discipline, but is preserved
        for deterministic statistics output.
    max_cycles:
        Safety bound; exceeding it raises :class:`SimulationError` so a
        deadlocked pipeline fails loudly instead of spinning forever.
    """

    def __init__(
        self,
        components: Optional[Iterable[Component]] = None,
        max_cycles: int = 200_000_000,
    ) -> None:
        self._components: List[Component] = list(components or [])
        self.max_cycles = int(max_cycles)
        self.cycle = 0
        self._watchers: List[Callable[[int], None]] = []

    def add_component(self, component: Component) -> Component:
        """Register ``component`` and return it (for chaining)."""
        self._components.append(component)
        return component

    def add_watcher(self, watcher: Callable[[int], None]) -> None:
        """Register a callable invoked after each committed cycle."""
        self._watchers.append(watcher)

    @property
    def components(self) -> List[Component]:
        return list(self._components)

    def reset(self) -> None:
        """Reset the cycle counter and every registered component."""
        self.cycle = 0
        for component in self._components:
            component.reset()

    def step(self) -> int:
        """Advance the simulation by exactly one cycle."""
        for component in self._components:
            component.compute(self.cycle)
        for component in self._components:
            component.commit(self.cycle)
        self.cycle += 1
        for watcher in self._watchers:
            watcher(self.cycle)
        return self.cycle

    def run_until_idle(self, settle_cycles: int = 1) -> int:
        """Run until every component reports idle.

        ``settle_cycles`` extra cycles are executed after the first
        all-idle observation so that components whose idleness depends on
        downstream consumers can drain cleanly.

        Returns the total number of cycles executed.
        """
        idle_streak = 0
        while idle_streak <= settle_cycles:
            if all(component.is_idle() for component in self._components):
                idle_streak += 1
            else:
                idle_streak = 0
            if idle_streak > settle_cycles:
                break
            self.step()
            if self.cycle > self.max_cycles:
                busy = [
                    component.name
                    for component in self._components
                    if not component.is_idle()
                ]
                raise SimulationError(
                    f"simulation exceeded {self.max_cycles} cycles; "
                    f"busy components: {busy or 'none (settling)'}"
                )
        return self.cycle
