"""Bounded hardware FIFO with occupancy statistics.

The FIFO group of the SDMU (Sec. III-C of the paper) consists of ``K^2``
identical FIFOs, one per kernel column.  :class:`HardwareFifo` models one
such queue: bounded capacity, single push/pop semantics per cycle at the
call sites, and statistics used by the stall/occupancy analyses.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Optional


@dataclass
class FifoStats:
    """Lifetime statistics of a :class:`HardwareFifo`."""

    pushes: int = 0
    pops: int = 0
    push_stalls: int = 0
    max_occupancy: int = 0
    occupancy_cycles: int = 0
    observed_cycles: int = 0

    def mean_occupancy(self) -> float:
        """Average occupancy over the observed cycles (0.0 if never observed)."""
        if self.observed_cycles == 0:
            return 0.0
        return self.occupancy_cycles / self.observed_cycles


class HardwareFifo:
    """A bounded first-in first-out queue.

    Parameters
    ----------
    capacity:
        Maximum number of entries; must be positive.
    name:
        Identifier used in error messages and reports.
    """

    def __init__(self, capacity: int, name: str = "fifo") -> None:
        if capacity <= 0:
            raise ValueError(f"FIFO capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.name = name
        self._entries: Deque[Any] = deque()
        self.stats = FifoStats()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_empty(self) -> bool:
        return not self._entries

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._entries)

    def try_push(self, item: Any) -> bool:
        """Push ``item`` if space is available; return whether it was accepted."""
        if self.is_full:
            self.stats.push_stalls += 1
            return False
        self._entries.append(item)
        self.stats.pushes += 1
        if len(self._entries) > self.stats.max_occupancy:
            self.stats.max_occupancy = len(self._entries)
        return True

    def push(self, item: Any) -> None:
        """Push ``item``; raise ``OverflowError`` when the FIFO is full."""
        if not self.try_push(item):
            raise OverflowError(f"push to full FIFO {self.name!r}")

    def peek(self) -> Any:
        """Return the oldest entry without removing it."""
        if not self._entries:
            raise IndexError(f"peek on empty FIFO {self.name!r}")
        return self._entries[0]

    def pop(self) -> Any:
        """Remove and return the oldest entry."""
        if not self._entries:
            raise IndexError(f"pop from empty FIFO {self.name!r}")
        self.stats.pops += 1
        return self._entries.popleft()

    def try_pop(self) -> Optional[Any]:
        """Pop and return the oldest entry, or ``None`` when empty.

        Note: a FIFO that stores ``None`` values cannot use this helper;
        the accelerator never does.
        """
        if not self._entries:
            return None
        return self.pop()

    def observe(self) -> None:
        """Record one cycle's occupancy sample into the statistics."""
        self.stats.observed_cycles += 1
        self.stats.occupancy_cycles += len(self._entries)

    def clear(self) -> None:
        """Drop all entries (statistics are preserved)."""
        self._entries.clear()

    def reset(self) -> None:
        """Drop all entries and statistics."""
        self._entries.clear()
        self.stats = FifoStats()
