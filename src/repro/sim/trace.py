"""Statistics containers for cycle-accurate runs.

These are shared by the SDMU, the computing core, and the top-level
accelerator: named counters, busy/idle utilization tracking, and an
optional bounded event trace for debugging pipelines.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class StatsCounter:
    """A bag of named integer counters."""

    def __init__(self) -> None:
        self._counts: Counter = Counter()

    def add(self, key: str, amount: int = 1) -> None:
        self._counts[key] += amount

    def get(self, key: str) -> int:
        return self._counts.get(key, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(sorted(self._counts.items()))

    def reset(self) -> None:
        self._counts.clear()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"StatsCounter({inner})"


@dataclass
class Utilization:
    """Busy/total cycle accounting for one hardware unit."""

    busy_cycles: int = 0
    total_cycles: int = 0

    def record(self, busy: bool) -> None:
        self.total_cycles += 1
        if busy:
            self.busy_cycles += 1

    @property
    def fraction(self) -> float:
        if self.total_cycles == 0:
            return 0.0
        return self.busy_cycles / self.total_cycles


class CycleTrace:
    """Bounded trace of ``(cycle, unit, event)`` tuples.

    Tracing is disabled by default (``capacity=0``) so production runs pay
    nothing; tests enable it to assert on pipeline behaviour.
    """

    def __init__(self, capacity: int = 0) -> None:
        self.capacity = int(capacity)
        self._events: List[Tuple[int, str, str]] = []
        self.dropped = 0

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def record(self, cycle: int, unit: str, event: str) -> None:
        if not self.enabled:
            return
        if len(self._events) >= self.capacity:
            self.dropped += 1
            return
        self._events.append((cycle, unit, event))

    def events(self, unit: Optional[str] = None) -> List[Tuple[int, str, str]]:
        if unit is None:
            return list(self._events)
        return [event for event in self._events if event[1] == unit]

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)
