"""``python -m repro lint`` — run the repo's invariant analyzer.

Exit codes: 0 when clean against the baseline (or no findings), 1 when
new violations appear, 2 on usage errors.  ``--update-baseline``
rewrites the accepted snapshot from the current findings and exits 0.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.base import LintReport, all_checkers, run_lint
from repro.lint.baseline import compare, load_baseline, save_baseline


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based invariant analyzer for the engine/backend/serving "
            "stack: backend registry contracts, hot-path purity, asyncio "
            "blocking calls, spawn/pickle safety, stats-field drift."
        ),
    )
    parser.add_argument(
        "targets",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/repro under --root)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path("."),
        help="project root that report paths are relative to (default: .)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=(
            "accepted-violations snapshot; findings inside it do not fail "
            "the run, new ones do"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE",
        help="run only this rule (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the JSON report to this file (any --format)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _json_report(
    report: LintReport,
    new: List,
    baselined: int,
    baseline_path: Optional[Path],
) -> dict:
    def encode(violation) -> dict:
        return {
            "file": violation.file,
            "line": violation.line,
            "col": violation.col,
            "rule": violation.rule,
            "message": violation.message,
        }

    return {
        "root": report.root,
        "files_checked": report.files_checked,
        "suppressed": report.suppressed,
        "baseline": str(baseline_path) if baseline_path else None,
        "baselined": baselined,
        "summary": report.summary(),
        "violations": [encode(v) for v in report.violations],
        "new_violations": [encode(v) for v in new],
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code not in (0, None) else 0

    if args.list_rules:
        for cls in all_checkers():
            print(f"{cls.rule}: {cls.description}")
        return 0

    if args.update_baseline and args.baseline is None:
        parser.error("--update-baseline requires --baseline")

    root = args.root.resolve()
    if not root.is_dir():
        print(f"repro lint: root {root} is not a directory", file=sys.stderr)
        return 2

    if args.rules:
        known = {cls.rule for cls in all_checkers()}
        unknown = sorted(set(args.rules) - known)
        if unknown:
            print(
                f"repro lint: unknown rule(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})",
                file=sys.stderr,
            )
            return 2

    report = run_lint(root, targets=args.targets or None, rules=args.rules)

    if args.update_baseline:
        save_baseline(args.baseline, report.violations)
        print(
            f"repro lint: baseline updated with "
            f"{len(report.violations)} finding(s) -> {args.baseline}"
        )
        return 0

    if args.baseline is not None:
        budget = load_baseline(args.baseline)
        comparison = compare(report.violations, budget)
        new = comparison.new
        baselined = len(report.violations) - len(new)
        stale = sum(comparison.stale.values())
    else:
        new = report.violations
        baselined = 0
        stale = 0

    payload = _json_report(report, new, baselined, args.baseline)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )

    if args.format == "json":
        print(json.dumps(payload, indent=2))
    else:
        for violation in new:
            print(violation.format())
        parts = [
            f"{report.files_checked} files",
            f"{len(report.violations)} finding(s)",
            f"{baselined} baselined",
            f"{report.suppressed} suppressed",
            f"{len(new)} new",
        ]
        if stale:
            parts.append(
                f"{stale} baselined finding(s) no longer present "
                "(consider --update-baseline)"
            )
        print("repro lint: " + ", ".join(parts))

    return 1 if new else 0


if __name__ == "__main__":
    raise SystemExit(main())
