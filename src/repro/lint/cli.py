"""``python -m repro lint`` — run the repo's invariant analyzer.

Exit codes: 0 when clean against the baseline (or no findings), 1 when
new violations appear, 2 on usage errors.  ``--update-baseline``
rewrites the accepted snapshot from the current findings and exits 0.

``--changed [REF]`` scopes the *report* to files changed against REF
(default HEAD, per ``git diff --name-only`` plus untracked files) and
their transitive importers — the analysis itself still sees the whole
project, so interprocedural rules stay sound.  ``--format sarif`` /
``--sarif PATH`` emit SARIF 2.1.0 for code-scanning UIs.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Set

from repro.lint.base import LintReport, all_checkers, run_lint
from repro.lint.baseline import compare, load_baseline, save_baseline
from repro.lint.cache import DEFAULT_CACHE_NAME, LintCache
from repro.lint.sarif import sarif_report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based invariant analyzer for the engine/backend/serving "
            "stack: backend registry contracts, hot-path purity, asyncio "
            "blocking calls (transitive), spawn/pickle safety, stats-field "
            "drift, lock discipline, wire-protocol drift, and metric "
            "discipline."
        ),
    )
    parser.add_argument(
        "targets",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/repro under --root)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path("."),
        help="project root that report paths are relative to (default: .)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--sarif",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write a SARIF 2.1.0 report to this file (any --format)",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help=(
            "report only findings in files changed against REF (default "
            "HEAD; git diff --name-only plus untracked) and in their "
            "transitive importers — the analysis still sees the whole "
            "project"
        ),
    )
    parser.add_argument(
        "--cache",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "per-file derived-data cache location (default: "
            f"{DEFAULT_CACHE_NAME} under --root)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the per-file cache for this run",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=(
            "accepted-violations snapshot; findings inside it do not fail "
            "the run, new ones do"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE",
        help="run only this rule (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the JSON report to this file (any --format)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _json_report(
    report: LintReport,
    new: List,
    baselined: int,
    baseline_path: Optional[Path],
) -> dict:
    def encode(violation) -> dict:
        return {
            "file": violation.file,
            "line": violation.line,
            "col": violation.col,
            "rule": violation.rule,
            "message": violation.message,
        }

    payload = {
        "root": report.root,
        "files_checked": report.files_checked,
        "suppressed": report.suppressed,
        "baseline": str(baseline_path) if baseline_path else None,
        "baselined": baselined,
        "summary": report.summary(),
        "violations": [encode(v) for v in report.violations],
        "new_violations": [encode(v) for v in new],
    }
    if report.changed_scope is not None:
        payload["changed_scope"] = report.changed_scope
    return payload


def _changed_files(root: Path, ref: str) -> Optional[Set[str]]:
    """Root-relative paths changed against ``ref`` plus untracked files,
    or ``None`` when git cannot answer (not a repo, bad ref)."""
    changed: Set[str] = set()
    for args in (
        ("git", "-C", str(root), "diff", "--name-only", ref),
        ("git", "-C", str(root), "ls-files", "--others",
         "--exclude-standard"),
    ):
        try:
            proc = subprocess.run(
                args, capture_output=True, text=True, timeout=30
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        changed.update(
            line.strip()
            for line in proc.stdout.splitlines()
            if line.strip()
        )
    return changed


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code not in (0, None) else 0

    if args.list_rules:
        for cls in all_checkers():
            print(f"{cls.rule}: {cls.description}")
        return 0

    if args.update_baseline and args.baseline is None:
        parser.error("--update-baseline requires --baseline")
    if args.update_baseline and args.changed is not None:
        parser.error(
            "--update-baseline needs the full picture; drop --changed"
        )

    root = args.root.resolve()
    if not root.is_dir():
        print(f"repro lint: root {root} is not a directory", file=sys.stderr)
        return 2

    if args.rules:
        known = {cls.rule for cls in all_checkers()}
        unknown = sorted(set(args.rules) - known)
        if unknown:
            print(
                f"repro lint: unknown rule(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})",
                file=sys.stderr,
            )
            return 2

    changed: Optional[Set[str]] = None
    if args.changed is not None:
        changed = _changed_files(root, args.changed)
        if changed is None:
            print(
                f"repro lint: --changed {args.changed}: git diff failed "
                f"under {root}",
                file=sys.stderr,
            )
            return 2

    cache: Optional[LintCache] = None
    if not args.no_cache:
        cache_path = args.cache or (root / DEFAULT_CACHE_NAME)
        cache = LintCache(cache_path)

    report = run_lint(
        root,
        targets=args.targets or None,
        rules=args.rules,
        changed=sorted(changed) if changed is not None else None,
        cache=cache,
    )

    if args.update_baseline:
        save_baseline(args.baseline, report.violations)
        print(
            f"repro lint: baseline updated with "
            f"{len(report.violations)} finding(s) -> {args.baseline}"
        )
        return 0

    if args.baseline is not None:
        budget = load_baseline(args.baseline)
        comparison = compare(report.violations, budget)
        new = comparison.new
        baselined = len(report.violations) - len(new)
        stale = sum(comparison.stale.values())
    else:
        new = report.violations
        baselined = 0
        stale = 0

    payload = _json_report(report, new, baselined, args.baseline)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
    if args.sarif is not None:
        args.sarif.parent.mkdir(parents=True, exist_ok=True)
        args.sarif.write_text(
            json.dumps(sarif_report(report, new), indent=2) + "\n",
            encoding="utf-8",
        )

    if args.format == "json":
        print(json.dumps(payload, indent=2))
    elif args.format == "sarif":
        print(json.dumps(sarif_report(report, new), indent=2))
    else:
        for violation in new:
            print(violation.format())
        parts = [
            f"{report.files_checked} files",
            f"{len(report.violations)} finding(s)",
            f"{baselined} baselined",
            f"{report.suppressed} suppressed",
            f"{len(new)} new",
        ]
        if report.changed_scope is not None:
            parts.append(
                f"scoped to {len(report.changed_scope)} changed+dependent "
                "file(s)"
            )
        if stale:
            parts.append(
                f"{stale} baselined finding(s) no longer present "
                "(consider --update-baseline)"
            )
        print("repro lint: " + ", ".join(parts))

    return 1 if new else 0


if __name__ == "__main__":
    raise SystemExit(main())
