"""SARIF 2.1.0 emission for ``repro lint`` findings.

SARIF is the interchange format CI code-scanning UIs ingest (GitHub
code scanning, VS Code SARIF viewers), so the analyzer's findings can
annotate pull requests instead of living in a job log.  One run, one
tool (``repro-lint``), every registered rule in the driver catalog;
findings that are new against the baseline are ``error`` level, known
baselined ones ``note`` — a viewer shows both, CI only fails on new.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.lint.base import LintReport, Violation, all_checkers

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def sarif_report(
    report: LintReport, new: Iterable[Violation]
) -> Dict[str, object]:
    """The findings of ``report`` as a SARIF 2.1.0 document (a dict —
    callers serialize).  ``new`` marks which violations fail the build."""
    new_set: Set[Violation] = set(new)
    rules: List[Dict[str, object]] = [
        {
            "id": cls.rule,
            "shortDescription": {"text": cls.description or cls.rule},
        }
        for cls in all_checkers()
    ]
    rule_ids = {cls.rule for cls in all_checkers()}
    # parse-error is synthesized by the loader, not a registered checker
    extra = sorted(
        {v.rule for v in report.violations} - rule_ids
    )
    rules.extend(
        {"id": rule, "shortDescription": {"text": rule}} for rule in extra
    )

    results: List[Dict[str, object]] = []
    for violation in report.violations:
        results.append(
            {
                "ruleId": violation.rule,
                "level": "error" if violation in new_set else "note",
                "message": {"text": violation.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": violation.file,
                                "uriBaseId": "ROOT",
                            },
                            "region": {
                                "startLine": max(1, violation.line),
                                "startColumn": violation.col + 1,
                            },
                        }
                    }
                ],
            }
        )

    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {
                    "ROOT": {"uri": "file:///" + report.root.strip("/") + "/"}
                },
                "results": results,
            }
        ],
    }
