"""``repro.lint`` — AST-based invariant analyzer for this stack.

Eight repo-specific rules (``backend-contract``, ``hot-path``,
``async-blocking``, ``spawn-safety``, ``stats-drift``,
``lock-discipline``, ``wire-drift``, ``metric-discipline``) over a
small checker framework with a project symbol table / call graph for
the interprocedural ones; run via ``python -m repro lint``.  See
``docs/lint.md`` for the architecture, rule catalog, and the
suppression/baseline workflow.
"""

from repro.lint.base import (
    Checker,
    LintReport,
    Project,
    SourceFile,
    Violation,
    all_checkers,
    register_checker,
    run_lint,
)
from repro.lint.baseline import (
    BaselineComparison,
    compare,
    load_baseline,
    save_baseline,
)

__all__ = [
    "Checker",
    "LintReport",
    "Project",
    "SourceFile",
    "Violation",
    "all_checkers",
    "register_checker",
    "run_lint",
    "BaselineComparison",
    "compare",
    "load_baseline",
    "save_baseline",
]
