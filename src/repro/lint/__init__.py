"""``repro.lint`` — AST-based invariant analyzer for this stack.

Five repo-specific rules (``backend-contract``, ``hot-path``,
``async-blocking``, ``spawn-safety``, ``stats-drift``) over a small
checker framework; run via ``python -m repro lint``.  See
``docs/lint.md`` for the rule catalog and the suppression/baseline
workflow.
"""

from repro.lint.base import (
    Checker,
    LintReport,
    Project,
    SourceFile,
    Violation,
    all_checkers,
    register_checker,
    run_lint,
)
from repro.lint.baseline import (
    BaselineComparison,
    compare,
    load_baseline,
    save_baseline,
)

__all__ = [
    "Checker",
    "LintReport",
    "Project",
    "SourceFile",
    "Violation",
    "all_checkers",
    "register_checker",
    "run_lint",
    "BaselineComparison",
    "compare",
    "load_baseline",
    "save_baseline",
]
