"""Checker framework of ``repro.lint`` — the repo-specific analyzer.

The stack carries contracts that ordinary linters cannot see: the
:class:`~repro.engine.backend.ExecutionBackend` surface behind the
registry, the bit-identity dtype discipline of the fused/CSR hot paths,
the non-blocking rule inside :class:`~repro.runtime.server.SessionServer`
coroutines, and pickle/spawn safety on the sharded path.  This module
provides the machinery those rules plug into:

* :class:`Violation` — one finding (file, line, rule id, message);
* :class:`SourceFile` / :class:`Project` — parsed source set with
  ``# repro-lint: disable=RULE`` suppression bookkeeping;
* :class:`Checker` — rule base class with path scoping, registered via
  :func:`register_checker` into a rule registry;
* :func:`run_lint` — load, check, filter suppressions, report.

Checkers are pure :mod:`ast` consumers: nothing is imported or executed,
so fixture modules with deliberate violations can be linted without
being importable.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.lint.cache import LintCache
    from repro.lint.graph import ModuleSummary, ProjectGraph


@dataclass(frozen=True)
class Violation:
    """One finding: where, which rule, and what is wrong.

    ``message`` must be stable across unrelated edits (no line numbers or
    volatile state inside it) — the baseline matches violations on
    ``(file, rule, message)``, so a message that shifts with its line
    would make every baselined finding reappear as new.
    """

    file: str  # posix path relative to the lint root
    line: int
    col: int
    rule: str
    message: str

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        """Baseline identity — deliberately excludes the line number."""
        return (self.file, self.rule, self.message)

    def format(self) -> str:
        return f"{self.file}:{self.line}:{self.col}: [{self.rule}] {self.message}"


_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_*,\- ]+)")

_NON_CODE_TOKENS = frozenset(
    (
        tokenize.COMMENT,
        tokenize.NEWLINE,
        tokenize.NL,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENDMARKER,
        tokenize.ENCODING,
    )
)


def _extract_suppressions(
    text: str,
) -> Tuple[Dict[int, Set[str]], Dict[int, Set[str]]]:
    """Map ``# repro-lint: disable=RULE[,RULE]`` comments to line numbers.

    Returns ``(same_line, comment_only)``: rules suppressed on the line
    they appear on, and rules on comment-only lines (which suppress the
    *next* line).  Tokenized rather than regex-scanned so the marker
    inside a string literal does not suppress anything.
    """
    same_line: Dict[int, Set[str]] = {}
    code_lines: Set[int] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return {}, {}
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            match = _SUPPRESS_RE.search(tok.string)
            if match:
                rules = {
                    rule.strip()
                    for rule in match.group(1).split(",")
                    if rule.strip()
                }
                same_line.setdefault(tok.start[0], set()).update(rules)
        elif tok.type not in _NON_CODE_TOKENS:
            for line in range(tok.start[0], tok.end[0] + 1):
                code_lines.add(line)
    comment_only = {
        line: rules
        for line, rules in same_line.items()
        if line not in code_lines
    }
    return same_line, comment_only


def _decorated_span_rules(
    tree: ast.Module,
    same_line: Dict[int, Set[str]],
    comment_only: Dict[int, Set[str]],
) -> Dict[int, Set[str]]:
    """Bind suppressions on decorator lines to the whole decorated def.

    A ``def``/``class`` with decorators is one statement spanning from
    its first decorator line to the ``def`` line, so a marker anywhere in
    that span (or on a comment-only line directly above it) suppresses
    findings reported at any line of the span — in particular findings
    anchored at the ``def`` line, which a marker on the decorator line
    used to miss.
    """
    span_rules: Dict[int, Set[str]] = {}
    for node in ast.walk(tree):
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if not node.decorator_list:
            continue
        start = min(dec.lineno for dec in node.decorator_list)
        end = node.lineno  # the def/class line itself
        rules: Set[str] = set()
        rules.update(comment_only.get(start - 1, ()))
        for line in range(start, end + 1):
            rules.update(same_line.get(line, ()))
        if not rules:
            continue
        for line in range(start, end + 1):
            span_rules.setdefault(line, set()).update(rules)
    return span_rules


@dataclass
class SourceFile:
    """One parsed source file plus its suppression map."""

    rel: str  # posix path relative to the project root
    path: Path
    text: str
    tree: ast.Module
    digest: str = ""  # sha256 of text — the cache key for derived data
    _same_line: Dict[int, Set[str]] = field(default_factory=dict)
    _comment_only: Dict[int, Set[str]] = field(default_factory=dict)
    _span_rules: Dict[int, Set[str]] = field(default_factory=dict)

    @classmethod
    def parse(
        cls,
        root: Path,
        path: Path,
        cache: Optional["LintCache"] = None,
    ) -> "SourceFile":
        text = path.read_text(encoding="utf-8")
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        rel = path.relative_to(root).as_posix()
        tree = ast.parse(text, filename=str(path))
        payload = (
            cache.get_payload(rel, digest, "suppressions")
            if cache is not None
            else None
        )
        if payload is not None:
            same_line = _rules_from_payload(payload.get("same_line", {}))
            comment_only = _rules_from_payload(
                payload.get("comment_only", {})
            )
            span_rules = _rules_from_payload(payload.get("span_rules", {}))
        else:
            same_line, comment_only = _extract_suppressions(text)
            span_rules = _decorated_span_rules(tree, same_line, comment_only)
            if cache is not None:
                cache.put_payload(
                    rel,
                    digest,
                    "suppressions",
                    {
                        "same_line": _rules_to_payload(same_line),
                        "comment_only": _rules_to_payload(comment_only),
                        "span_rules": _rules_to_payload(span_rules),
                    },
                )
        return cls(
            rel=rel,
            path=path,
            text=text,
            tree=tree,
            digest=digest,
            _same_line=same_line,
            _comment_only=comment_only,
            _span_rules=span_rules,
        )

    def suppressed(self, line: int, rule: str) -> bool:
        """Whether ``rule`` is disabled on ``line``.

        A suppression comment applies to its own line, or — when it is
        the only thing on its line — to the line directly below it.  On
        a decorated ``def``/``class`` the whole decorator-to-def span is
        one statement: a marker on any of its lines covers all of them.
        ``disable=*`` silences every rule.
        """
        for rules in (
            self._same_line.get(line),
            self._comment_only.get(line - 1),
            self._span_rules.get(line),
        ):
            if rules and ("*" in rules or rule in rules):
                return True
        return False


def _rules_to_payload(rules: Dict[int, Set[str]]) -> Dict[str, List[str]]:
    return {str(line): sorted(names) for line, names in rules.items()}


def _rules_from_payload(payload: Dict[str, Any]) -> Dict[int, Set[str]]:
    out: Dict[int, Set[str]] = {}
    for line, names in payload.items():
        try:
            out[int(line)] = set(names)
        except (TypeError, ValueError):
            continue
    return out


class Project:
    """The analyzed source set: parsed files keyed by root-relative path.

    ``root`` anchors relative paths in reports and is where project-scope
    checkers find non-Python collateral (``docs/*.md`` for the
    stats-field drift rule).  Files that fail to parse are reported as
    ``parse-error`` violations instead of aborting the run.
    """

    def __init__(
        self, root: Path, cache: Optional["LintCache"] = None
    ) -> None:
        self.root = Path(root).resolve()
        self.files: Dict[str, SourceFile] = {}
        self.parse_errors: List[Violation] = []
        self.cache = cache
        self._summaries: Dict[str, Optional["ModuleSummary"]] = {}
        self._graph: Optional["ProjectGraph"] = None

    @classmethod
    def load(
        cls,
        root: Path,
        targets: Optional[Sequence[Path]] = None,
        cache: Optional["LintCache"] = None,
    ) -> "Project":
        project = cls(root, cache=cache)
        if targets is None:
            default = project.root / "src" / "repro"
            targets = [default if default.is_dir() else project.root]
        seen: Set[Path] = set()
        for target in targets:
            target = Path(target)
            if not target.is_absolute():
                target = project.root / target
            paths = (
                sorted(target.rglob("*.py"))
                if target.is_dir()
                else [target]
            )
            for path in paths:
                path = path.resolve()
                if path in seen:
                    continue
                seen.add(path)
                try:
                    rel = path.relative_to(project.root).as_posix()
                except ValueError:
                    rel = path.as_posix()
                try:
                    source = SourceFile.parse(project.root, path, cache=cache)
                except (SyntaxError, ValueError) as exc:
                    project.parse_errors.append(
                        Violation(
                            file=rel,
                            line=getattr(exc, "lineno", None) or 1,
                            col=0,
                            rule="parse-error",
                            message=(
                                "file could not be parsed: "
                                + str(
                                    exc.msg
                                    if isinstance(exc, SyntaxError)
                                    else exc
                                )
                            ),
                        )
                    )
                    continue
                except OSError as exc:
                    project.parse_errors.append(
                        Violation(
                            file=rel,
                            line=1,
                            col=0,
                            rule="parse-error",
                            message=f"file could not be read: {exc}",
                        )
                    )
                    continue
                source.rel = rel
                project.files[rel] = source
        return project

    def iter_files(self, patterns: Sequence[str]) -> Iterable[SourceFile]:
        """Files whose root-relative path matches any glob in ``patterns``."""
        for rel in sorted(self.files):
            if any(fnmatch(rel, pattern) for pattern in patterns):
                yield self.files[rel]

    def summary_for(self, rel: str) -> Optional["ModuleSummary"]:
        """The symbol/call summary of one file (cache-aware, memoized)."""
        if rel in self._summaries:
            return self._summaries[rel]
        from repro.lint import graph as graph_mod

        source = self.files.get(rel)
        summary: Optional["ModuleSummary"] = None
        if source is not None:
            payload = (
                self.cache.get_payload(rel, source.digest, "summary")
                if self.cache is not None
                else None
            )
            if payload is not None:
                summary = graph_mod.summary_from_payload(payload)
            if summary is None:  # cache miss or malformed payload
                summary = graph_mod.summarize(source)
                if self.cache is not None and summary is not None:
                    self.cache.put_payload(
                        rel,
                        source.digest,
                        "summary",
                        graph_mod.summary_to_payload(summary),
                    )
        self._summaries[rel] = summary
        return summary

    @property
    def graph(self) -> "ProjectGraph":
        """Lazily built project symbol table + call graph."""
        if self._graph is None:
            from repro.lint.graph import ProjectGraph

            self._graph = ProjectGraph(self)
        return self._graph


class Checker:
    """Base class of one lint rule.

    Subclasses set :attr:`rule` (the suppression / baseline identifier),
    :attr:`description`, and :attr:`scope` (root-relative path globs the
    rule applies to), then implement :meth:`check` returning the raw
    findings — suppression filtering and ordering are the runner's job.
    """

    rule: str = "abstract"
    description: str = ""
    #: fnmatch globs over root-relative posix paths.
    scope: Tuple[str, ...] = ("*.py",)

    def scoped_files(self, project: Project) -> Iterable[SourceFile]:
        return project.iter_files(self.scope)

    def check(self, project: Project) -> List[Violation]:
        raise NotImplementedError

    def violation(
        self, source: SourceFile, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            file=source.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.rule,
            message=message,
        )


_CHECKERS: Dict[str, Type[Checker]] = {}


def register_checker(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a :class:`Checker` to the rule registry."""
    if not cls.rule or cls.rule == "abstract":
        raise ValueError(f"checker {cls.__name__} must define a rule id")
    existing = _CHECKERS.get(cls.rule)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"lint rule {cls.rule!r} is already registered by "
            f"{existing.__name__}"
        )
    _CHECKERS[cls.rule] = cls
    return cls


def all_checkers() -> Tuple[Type[Checker], ...]:
    """Every registered checker class, sorted by rule id."""
    # Importing the package registers the built-in rules exactly once.
    import repro.lint.checkers  # noqa: F401

    return tuple(_CHECKERS[rule] for rule in sorted(_CHECKERS))


@dataclass
class LintReport:
    """Outcome of one :func:`run_lint` pass (before baseline comparison)."""

    root: str
    files_checked: int
    violations: List[Violation]
    suppressed: int
    #: when --changed scoping was applied: the changed files plus every
    #: transitive importer, i.e. the set findings were filtered to
    changed_scope: Optional[List[str]] = None

    def summary(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return counts


def run_lint(
    root: Path,
    targets: Optional[Sequence[Path]] = None,
    rules: Optional[Sequence[str]] = None,
    changed: Optional[Sequence[str]] = None,
    cache: Optional["LintCache"] = None,
) -> LintReport:
    """Lint ``targets`` (default ``src/repro``) under ``root``.

    Returns every unsuppressed violation, sorted by file, line, and
    rule; parse failures surface as ``parse-error`` violations (never
    suppressible — a file that does not parse cannot carry a suppression
    comment that means anything).

    ``changed`` (root-relative posix paths, e.g. from ``git diff
    --name-only``) scopes the *report*, not the analysis: the whole
    project is still loaded and every checker still sees it — an
    interprocedural rule is only sound with the full picture — but
    reported findings are filtered to the changed files plus every
    transitive importer of a changed module.  ``cache`` is an optional
    :class:`~repro.lint.cache.LintCache`; it is flushed before return.
    """
    project = Project.load(Path(root), targets, cache=cache)
    checkers = [
        cls()
        for cls in all_checkers()
        if rules is None or cls.rule in rules
    ]
    kept: List[Violation] = list(project.parse_errors)
    suppressed = 0
    for checker in checkers:
        for violation in checker.check(project):
            source = project.files.get(violation.file)
            if source is not None and source.suppressed(
                violation.line, violation.rule
            ):
                suppressed += 1
            else:
                kept.append(violation)
    changed_scope: Optional[List[str]] = None
    if changed is not None:
        scope = project.graph.dependents_closure(changed)
        kept = [v for v in kept if v.file in scope]
        changed_scope = sorted(scope)
    kept.sort(key=lambda v: (v.file, v.line, v.rule, v.message))
    if cache is not None:
        cache.save()
    return LintReport(
        root=str(project.root),
        files_checked=len(project.files),
        violations=kept,
        suppressed=suppressed,
        changed_scope=changed_scope,
    )
