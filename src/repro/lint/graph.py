"""Project symbol table and call graph for interprocedural lint rules.

Per-file AST checks cannot see the contracts that actually bite this
stack — a helper method mutating registry state that is only safe under
``self._lock``, or a coroutine reaching ``time.sleep`` three sync calls
deep.  This module builds, from the already-parsed :class:`Project`
source set and nothing else (no imports executed), the two structures
those rules need:

* a **symbol table**: every module, class, method, and function keyed by
  qualified name (``module:Class.method`` / ``module:function``), with
  import aliases resolved (``from engine.cache import RulebookCache as
  RC`` makes ``RC`` mean ``engine.cache:RulebookCache``);
* a **call graph**: for each function, the calls it makes, each resolved
  to a project qualname where resolution is sound — ``self.helper()``
  through the class and its project-local bases, bare names through
  module scope and imports, ``module.fn()`` / ``Class.method()``
  through aliases — and degraded to *unknown* (``target=None``)
  everywhere else.  Unknown is a first-class answer: dynamic dispatch,
  builtins, third-party calls, and ``getattr`` tricks must never crash
  a checker or let it claim something false.

Module names derive from root-relative paths (``src/`` stripped,
``.py`` dropped, ``/`` → ``.``, trailing ``.__init__`` removed), so the
same resolution works for the real tree (``repro.obs.metrics``) and for
test fixture packages (``engine.helpers``).  Import cycles are fine —
summaries are built per file first and linked after, so there is no
recursive resolution to diverge.

Summaries are pure data (names and line numbers, no AST nodes), which
lets :mod:`repro.lint.cache` persist them per content digest and skip
re-deriving them for unchanged files.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.base import Project, SourceFile

#: Cap on transitive traversals (reachability, dependent expansion).  The
#: graph is small; this is a defensive bound, not a tuning knob.
MAX_DEPTH = 64


def module_name_for(rel: str) -> Optional[str]:
    """Dotted module name for a root-relative posix path, or ``None``.

    ``src/repro/obs/metrics.py`` → ``repro.obs.metrics``;
    ``engine/__init__.py`` → ``engine``; non-Python paths → ``None``.
    """
    if not rel.endswith(".py"):
        return None
    parts = rel[: -len(".py")].split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if not parts or not all(parts):
        return None
    return ".".join(parts)


@dataclass
class CallSite:
    """One call made inside a function body.

    ``target`` is the resolved project qualname, or ``None`` when the
    callee is dynamic, external, or otherwise unresolvable — checkers
    must treat ``None`` as "anything could happen", never as "safe".
    ``text`` is the source-ish rendering used in messages (``self.flush``,
    ``time.sleep``); ``in_lock`` records whether the call site is
    lexically inside a ``with self._lock`` block (the lock-discipline
    rule keys on it).
    """

    text: str
    line: int
    target: Optional[str] = None
    in_lock: bool = False


@dataclass
class FunctionInfo:
    """One function or method in the symbol table."""

    qualname: str  # module:Class.method or module:function
    module: str
    rel: str
    name: str
    cls: Optional[str]  # owning class name, None for module-level defs
    line: int
    is_async: bool = False
    calls: List[CallSite] = field(default_factory=list)
    #: bare attribute mentions (``self.fn`` / ``mod.fn`` *not* called) —
    #: callback registrations keep their targets "reachable".
    mentions: List[str] = field(default_factory=list)


@dataclass
class ClassInfo:
    name: str
    module: str
    line: int
    bases: List[str] = field(default_factory=list)  # raw base expressions
    methods: Dict[str, str] = field(default_factory=dict)  # name -> qualname


@dataclass
class ModuleSummary:
    """Everything graph construction needs from one file, as pure data."""

    module: str
    rel: str
    #: local alias -> dotted target ("pkg.mod" or "pkg.mod:Symbol")
    imports: Dict[str, str] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: dotted module names this module imports (edges for --changed)
    imported_modules: List[str] = field(default_factory=list)


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` attribute chain as a dotted string, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_self_lock_with(stmt: ast.With) -> bool:
    """Whether ``stmt`` is ``with self._lock:`` (possibly among others)."""
    for item in stmt.items:
        expr = item.context_expr
        if (
            isinstance(expr, ast.Attribute)
            and expr.attr == "_lock"
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return True
    return False


class _FunctionScanner(ast.NodeVisitor):
    """Collect calls and bare-callable mentions inside one function body.

    Nested ``def``s are skipped (they run when *called*, not here), and
    only ``node.func`` positions count as calls — a function passed as an
    argument to ``run_in_executor`` / ``to_thread`` is a mention, not a
    call edge, which is exactly the executor seam the async-blocking
    rule must not cross.
    """

    def __init__(self, info: FunctionInfo) -> None:
        self.info = info
        self._lock_depth = 0

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested scope: its call sites belong to it, not to us

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.AST) -> None:
        locked = _is_self_lock_with(node)
        if locked:
            self._lock_depth += 1
        self.generic_visit(node)
        if locked:
            self._lock_depth -= 1

    def visit_Call(self, node: ast.Call) -> None:
        text = _dotted(node.func)
        self.info.calls.append(
            CallSite(
                text=text or "<dynamic>",
                line=node.lineno,
                in_lock=self._lock_depth > 0,
            )
        )
        # The callee expression itself is not a "mention"; arguments are.
        for child in list(node.args) + [kw.value for kw in node.keywords]:
            self.visit(child)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        text = _dotted(node)
        if text is not None:
            self.info.mentions.append(text)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.info.mentions.append(node.id)


def summarize(source: SourceFile) -> Optional[ModuleSummary]:
    """Build the :class:`ModuleSummary` of one parsed file."""
    module = module_name_for(source.rel)
    if module is None:
        return None
    summary = ModuleSummary(module=module, rel=source.rel)
    package_parts = module.split(".")

    def record_import_from(node: ast.ImportFrom) -> None:
        if node.level:
            # relative import: resolve against the containing package
            base = package_parts[: len(package_parts) - node.level]
            target = ".".join(base + ([node.module] if node.module else []))
        else:
            target = node.module or ""
        if not target:
            return
        summary.imported_modules.append(target)
        for alias in node.names:
            if alias.name == "*":
                continue
            summary.imports[alias.asname or alias.name] = (
                f"{target}:{alias.name}"
            )

    def scan_function(
        node: ast.AST, cls: Optional[ClassInfo]
    ) -> FunctionInfo:
        qual = (
            f"{module}:{cls.name}.{node.name}"
            if cls is not None
            else f"{module}:{node.name}"
        )
        info = FunctionInfo(
            qualname=qual,
            module=module,
            rel=source.rel,
            name=node.name,
            cls=cls.name if cls is not None else None,
            line=node.lineno,
            is_async=isinstance(node, ast.AsyncFunctionDef),
        )
        scanner = _FunctionScanner(info)
        for stmt in node.body:
            scanner.visit(stmt)
        return info

    for node in source.tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                summary.imported_modules.append(alias.name)
                if alias.asname:
                    summary.imports[alias.asname] = alias.name
                else:
                    # ``import pkg.mod`` binds the top-level package name
                    root_name = alias.name.split(".")[0]
                    summary.imports[root_name] = root_name
        elif isinstance(node, ast.ImportFrom):
            record_import_from(node)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = scan_function(node, None)
            summary.functions[node.name] = info
        elif isinstance(node, ast.ClassDef):
            cls = ClassInfo(name=node.name, module=module, line=node.lineno)
            for base in node.bases:
                text = _dotted(base)
                if text is not None:
                    cls.bases.append(text)
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = scan_function(item, cls)
                    cls.methods[item.name] = info.qualname
                    summary.functions[f"{cls.name}.{item.name}"] = info
            summary.classes[node.name] = cls
    return summary


def summary_to_payload(summary: ModuleSummary) -> Dict[str, object]:
    """JSON-safe snapshot of a summary for :mod:`repro.lint.cache`.

    Call targets are *not* persisted — they depend on every other file
    in the project, so :meth:`ProjectGraph._link` recomputes them each
    run from the (cheap) per-file data serialized here.
    """
    return {
        "module": summary.module,
        "rel": summary.rel,
        "imports": dict(summary.imports),
        "imported_modules": list(summary.imported_modules),
        "classes": {
            name: {
                "line": cls.line,
                "bases": list(cls.bases),
                "methods": dict(cls.methods),
            }
            for name, cls in summary.classes.items()
        },
        "functions": {
            key: {
                "qualname": fn.qualname,
                "name": fn.name,
                "cls": fn.cls,
                "line": fn.line,
                "is_async": fn.is_async,
                "calls": [
                    {"text": c.text, "line": c.line, "in_lock": c.in_lock}
                    for c in fn.calls
                ],
                "mentions": list(fn.mentions),
            }
            for key, fn in summary.functions.items()
        },
    }


def summary_from_payload(payload: Dict[str, object]) -> Optional[ModuleSummary]:
    """Inverse of :func:`summary_to_payload`; ``None`` on malformed data."""
    try:
        summary = ModuleSummary(
            module=str(payload["module"]),
            rel=str(payload["rel"]),
            imports={
                str(k): str(v) for k, v in dict(payload["imports"]).items()
            },
            imported_modules=[
                str(m) for m in list(payload["imported_modules"])
            ],
        )
        for name, raw in dict(payload["classes"]).items():
            summary.classes[str(name)] = ClassInfo(
                name=str(name),
                module=summary.module,
                line=int(raw["line"]),
                bases=[str(b) for b in raw["bases"]],
                methods={str(k): str(v) for k, v in raw["methods"].items()},
            )
        for key, raw in dict(payload["functions"]).items():
            cls_name = raw["cls"]
            summary.functions[str(key)] = FunctionInfo(
                qualname=str(raw["qualname"]),
                module=summary.module,
                rel=summary.rel,
                name=str(raw["name"]),
                cls=str(cls_name) if cls_name is not None else None,
                line=int(raw["line"]),
                is_async=bool(raw["is_async"]),
                calls=[
                    CallSite(
                        text=str(c["text"]),
                        line=int(c["line"]),
                        in_lock=bool(c["in_lock"]),
                    )
                    for c in raw["calls"]
                ],
                mentions=[str(m) for m in raw["mentions"]],
            )
        return summary
    except (KeyError, TypeError, ValueError):
        return None


class ProjectGraph:
    """Linked symbol table + call graph over a loaded :class:`Project`.

    Construction is two-phase: per-file summaries first (cacheable, no
    cross-file state), then link — resolve every recorded call site to a
    project qualname or leave it unknown.  All lookups return ``None`` /
    empty rather than raising when a name cannot be resolved.
    """

    def __init__(self, project: Project) -> None:
        self.project = project
        self.modules: Dict[str, ModuleSummary] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self._rel_by_module: Dict[str, str] = {}
        for rel in sorted(project.files):
            summary = project.summary_for(rel)
            if summary is None:
                continue
            self.modules[summary.module] = summary
            self._rel_by_module[summary.module] = rel
            for info in summary.functions.values():
                self.functions[info.qualname] = info
        self._link()

    # -- symbol lookups -------------------------------------------------

    def function(self, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qualname)

    def class_info(self, module: str, name: str) -> Optional[ClassInfo]:
        summary = self.modules.get(module)
        return summary.classes.get(name) if summary else None

    def resolve_symbol(self, module: str, name: str) -> Optional[str]:
        """Resolve ``name`` in ``module`` scope to ``module:Symbol``.

        Follows ``from x import y as z`` chains across files (bounded, so
        import cycles terminate).  Returns ``None`` for anything the
        project does not define.
        """
        seen: Set[Tuple[str, str]] = set()
        for _ in range(MAX_DEPTH):
            if (module, name) in seen:
                return None
            seen.add((module, name))
            summary = self.modules.get(module)
            if summary is None:
                return None
            if name in summary.classes or name in summary.functions:
                return f"{module}:{name}"
            target = summary.imports.get(name)
            if target is None:
                return None
            if ":" in target:
                next_module, next_name = target.split(":", 1)
                if next_module in self.modules:
                    module, name = next_module, next_name
                    continue
                # ``from pkg import mod`` where pkg.mod is a project module
                if f"{next_module}.{next_name}" in self.modules:
                    return f"{next_module}.{next_name}"
                return None
            # plain ``import pkg.mod`` — the alias names a module
            return target if target in self.modules else None
        return None

    def resolve_method(
        self, module: str, cls_name: str, method: str
    ) -> Optional[str]:
        """Resolve ``cls_name.method`` through project-local bases (MRO-
        light: depth-first over the written base order).  ``None`` when
        the class or an implementing base is outside the project."""
        seen: Set[str] = set()

        def walk(mod: str, name: str) -> Optional[str]:
            key = f"{mod}:{name}"
            if key in seen:
                return None
            seen.add(key)
            cls = self.class_info(mod, name)
            if cls is None:
                return None
            if method in cls.methods:
                return cls.methods[method]
            for base in cls.bases:
                resolved = self._resolve_class_expr(mod, base)
                if resolved is None:
                    continue
                base_mod, base_name = resolved
                found = walk(base_mod, base_name)
                if found is not None:
                    return found
            return None

        return walk(module, cls_name)

    def base_chain(self, module: str, cls_name: str) -> List[Tuple[str, str]]:
        """``(module, class)`` of the class plus every project-resolved
        ancestor, depth-first over the written base order; bases outside
        the project are silently absent (unknown, not an error)."""
        out: List[Tuple[str, str]] = []
        seen: Set[Tuple[str, str]] = set()

        def walk(mod: str, name: str) -> None:
            if (mod, name) in seen or len(seen) > MAX_DEPTH:
                return
            seen.add((mod, name))
            cls = self.class_info(mod, name)
            if cls is None:
                return
            out.append((mod, name))
            for base in cls.bases:
                resolved = self._resolve_class_expr(mod, base)
                if resolved is not None:
                    walk(*resolved)

        walk(module, cls_name)
        return out

    def _resolve_class_expr(
        self, module: str, text: str
    ) -> Optional[Tuple[str, str]]:
        """``text`` (``Base`` / ``mod.Base``) → ``(module, class)``."""
        if "." not in text:
            qual = self.resolve_symbol(module, text)
            if qual is None or ":" not in qual:
                return None
            mod, name = qual.split(":", 1)
            return (mod, name) if self.class_info(mod, name) else None
        head, attr = text.rsplit(".", 1)
        summary = self.modules.get(module)
        if summary is None:
            return None
        target = summary.imports.get(head.split(".")[0])
        mod = None
        if target is not None and ":" not in target:
            mod = ".".join([target] + head.split(".")[1:])
        elif head in self.modules:
            mod = head
        if mod is not None and self.class_info(mod, attr) is not None:
            return (mod, attr)
        return None

    # -- call graph -----------------------------------------------------

    def _link(self) -> None:
        for summary in self.modules.values():
            for info in summary.functions.values():
                for call in info.calls:
                    call.target = self._resolve_call(summary, info, call)

    def _resolve_call(
        self, summary: ModuleSummary, info: FunctionInfo, call: CallSite
    ) -> Optional[str]:
        text = call.text
        if text == "<dynamic>" or not text:
            return None
        parts = text.split(".")
        if parts[0] == "self" and info.cls is not None:
            if len(parts) != 2:
                return None  # self.attr.method(): instance-typed, unknown
            return self.resolve_method(summary.module, info.cls, parts[1])
        if len(parts) == 1:
            qual = self.resolve_symbol(summary.module, parts[0])
            if qual is None:
                return None
            # a bare call of a class is its constructor
            if ":" in qual:
                mod, name = qual.split(":", 1)
                cls = self.class_info(mod, name)
                if cls is not None:
                    return cls.methods.get("__init__", qual)
            return qual
        # mod.fn(...) / Class.method(...) / pkg.mod.fn(...)
        head = self.resolve_symbol(summary.module, parts[0])
        if head is None:
            return None
        if ":" in head:
            mod, name = head.split(":", 1)
            if self.class_info(mod, name) is not None and len(parts) == 2:
                return self.resolve_method(mod, name, parts[1])
            return None
        # head is a module: walk the remaining dotted path
        mod = head
        for mid in parts[1:-1]:
            if f"{mod}.{mid}" in self.modules:
                mod = f"{mod}.{mid}"
            else:
                return None
        summary2 = self.modules.get(mod)
        if summary2 is None:
            return None
        leaf = parts[-1]
        if leaf in summary2.functions:
            return f"{mod}:{leaf}"
        if leaf in summary2.classes:
            cls = summary2.classes[leaf]
            return cls.methods.get("__init__", f"{mod}:{leaf}")
        return None

    def callees(self, qualname: str) -> List[str]:
        info = self.functions.get(qualname)
        if info is None:
            return []
        seen: Set[str] = set()
        out: List[str] = []
        for call in info.calls:
            if call.target and call.target not in seen:
                seen.add(call.target)
                out.append(call.target)
        return out

    def callers_of(self, qualname: str) -> List[Tuple[FunctionInfo, CallSite]]:
        """Every known call site targeting ``qualname``."""
        out: List[Tuple[FunctionInfo, CallSite]] = []
        for info in self.functions.values():
            for call in info.calls:
                if call.target == qualname:
                    out.append((info, call))
        return out

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Transitive closure of resolved call edges from ``roots``."""
        seen: Set[str] = set()
        frontier = [q for q in roots if q in self.functions]
        while frontier:
            nxt: List[str] = []
            for qual in frontier:
                if qual in seen:
                    continue
                seen.add(qual)
                nxt.extend(
                    t for t in self.callees(qual) if t not in seen
                )
            frontier = nxt
        return seen

    # -- import graph (for --changed) -----------------------------------

    def importers_of(self, module: str) -> Set[str]:
        out: Set[str] = set()
        for summary in self.modules.values():
            for imported in summary.imported_modules:
                # ``from pkg.mod import X`` records pkg.mod; ``import
                # pkg.mod`` ditto; importing a package pulls its
                # __init__ in as well.
                if imported == module or imported.startswith(module + "."):
                    out.add(summary.module)
        return out

    def dependents_closure(self, rels: Iterable[str]) -> Set[str]:
        """Root-relative paths of ``rels`` plus every transitive importer.

        Non-module paths (docs, configs) pass through unchanged so
        ``--changed`` can still scope doc-drift findings to them.
        """
        out: Set[str] = set()
        frontier: List[str] = []
        for rel in rels:
            out.add(rel)
            module = module_name_for(rel)
            if module is not None and module in self.modules:
                frontier.append(module)
        for _ in range(MAX_DEPTH):
            if not frontier:
                break
            nxt: List[str] = []
            for module in frontier:
                for importer in self.importers_of(module):
                    rel = self._rel_by_module.get(importer)
                    if rel is not None and rel not in out:
                        out.add(rel)
                        nxt.append(importer)
            frontier = nxt
        return out
