"""Content-addressed per-file cache for derived lint data.

Whole-repo runs spend their front-end time in three places: ``ast.parse``
(~200 ms across ``src/repro``), the tokenize pass behind suppression
extraction (~375 ms), and building the per-module symbol summaries the
call graph links.  Pickling parsed trees was benchmarked and *lost* —
``pickle.loads`` of an ``ast.Module`` is slower than re-parsing the
source — so this cache deliberately does not store ASTs.  It stores the
cheap-to-serialize derived data instead (suppression maps, decorated-def
spans, :class:`~repro.lint.graph.ModuleSummary` payloads), keyed by the
sha256 of the file's text, and the parse itself always runs.

The store is one JSON file (default ``.repro-lint-cache.json`` under the
project root, gitignored).  Any corruption, version mismatch, or digest
miss silently degrades to recomputing — the cache can never change what
the analyzer reports, only how fast it reports it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional

CACHE_VERSION = 1

#: default cache filename under the project root
DEFAULT_CACHE_NAME = ".repro-lint-cache.json"


class LintCache:
    """Digest-keyed payload store: ``(rel, digest, kind) -> payload``."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self._files: Dict[str, Dict[str, Any]] = {}
        self._dirty = False
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if (
            isinstance(raw, dict)
            and raw.get("version") == CACHE_VERSION
            and isinstance(raw.get("files"), dict)
        ):
            self._files = raw["files"]

    def get_payload(
        self, rel: str, digest: str, kind: str
    ) -> Optional[Dict[str, Any]]:
        """The cached ``kind`` payload for ``rel``, or ``None`` when the
        file changed (digest mismatch) or was never cached."""
        entry = self._files.get(rel)
        if not isinstance(entry, dict) or entry.get("digest") != digest:
            return None
        payload = entry.get(kind)
        return payload if isinstance(payload, dict) else None

    def put_payload(
        self, rel: str, digest: str, kind: str, payload: Dict[str, Any]
    ) -> None:
        entry = self._files.get(rel)
        if not isinstance(entry, dict) or entry.get("digest") != digest:
            entry = {"digest": digest}
            self._files[rel] = entry
        entry[kind] = payload
        self._dirty = True

    def save(self) -> None:
        """Write the store back if anything changed; IO errors are
        swallowed (a read-only checkout must still lint)."""
        if not self._dirty:
            return
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(
                json.dumps(
                    {"version": CACHE_VERSION, "files": self._files},
                    sort_keys=True,
                )
                + "\n",
                encoding="utf-8",
            )
            self._dirty = False
        except OSError:
            pass
