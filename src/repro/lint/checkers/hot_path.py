"""``hot-path``: vectorization and dtype discipline in the compute core.

PRs 1–5 bought the engine's speed by banishing a handful of patterns
from the matching and execution hot paths (``engine/``,
``sparse/ops.py``, ``nn/rulebook.py``); this rule keeps them banished:

* ``np.add.at`` — the buffered scalar scatter is orders of magnitude
  slower than the fused per-offset ``out[rows] += contribution`` (the
  seed's 10.3 ms/layer vs the engine's 1.6 ms was mostly this call);
* per-element ``for`` loops over array rows (``range(len(x))`` /
  ``range(x.shape[0])``, directly or through a local alias) — row work
  belongs in vectorized numpy expressions;
* list/set-append accumulation inside loops — growing Python
  collections element-wise hides an O(n) interpreter loop behind numpy
  code (the pre-PR-6 ``downsampled_coords`` fallback was exactly this);
* ``float32``/``float16`` narrowing (``astype(np.float32)``,
  ``np.float32(...)``) in functions that never consult the session's
  precision or quantization settings — ad-hoc narrowing silently breaks
  the bit-identity contract between backends.

Intentional exceptions (per-frame batching loops, per-offset rule lists
bounded by the kernel volume) carry inline
``# repro-lint: disable=hot-path`` suppressions stating why.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.lint.base import (
    Checker,
    Project,
    SourceFile,
    Violation,
    register_checker,
)

_NARROWING = ("float32", "float16")


def _is_numpy_name(node: ast.AST) -> bool:
    return isinstance(node, ast.Name) and node.id in ("np", "numpy")


def _is_len_or_shape(node: ast.AST) -> bool:
    """``len(x)`` or ``x.shape[i]`` — an array's element count."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "len"
    ):
        return True
    return (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Attribute)
        and node.value.attr == "shape"
    )


def _narrowing_dtype(node: ast.AST) -> Optional[str]:
    """The narrow dtype a call argument names, if any."""
    if isinstance(node, ast.Attribute) and node.attr in _NARROWING:
        if _is_numpy_name(node.value):
            return node.attr
    if isinstance(node, ast.Constant) and node.value in _NARROWING:
        return str(node.value)
    return None


class _FunctionScan:
    """Per-function pass: collect dataflow facts, then flag patterns.

    Nested function definitions are scanned as their own functions (a
    closure has its own locals), so the recursive walk stops at any
    ``def`` boundary and queues it.
    """

    def __init__(
        self,
        checker: "HotPathChecker",
        source: SourceFile,
        fn: ast.AST,
    ) -> None:
        self.checker = checker
        self.source = source
        self.fn = fn
        self.violations: List[Violation] = []
        # Local names bound to empty list/set constructors.
        self.collections: Set[str] = set()
        # Local names aliasing len(...)/x.shape[...] values.
        self.length_aliases: Set[str] = set()
        # Whether the function consults precision/quantization settings,
        # which legitimizes an explicit float32 cast (the session's
        # _prepare_stack pattern).
        self.routed = False

    # -- pass 1: facts --------------------------------------------------
    def _collect(self, node: ast.AST) -> None:
        for child in ast.walk(node):
            if isinstance(child, (ast.Assign, ast.AnnAssign)):
                targets = (
                    child.targets
                    if isinstance(child, ast.Assign)
                    else [child.target]
                )
                value = child.value
                if value is None:
                    continue
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if self._is_empty_collection(value):
                        self.collections.add(target.id)
                    if _is_len_or_shape(value):
                        self.length_aliases.add(target.id)
            if isinstance(child, ast.Name) and child.id == "precision":
                self.routed = True
            if isinstance(child, ast.Attribute) and (
                child.attr == "precision" or "quant" in child.attr
            ):
                self.routed = True
            if isinstance(child, ast.Name) and "quant" in child.id:
                self.routed = True

    @staticmethod
    def _is_empty_collection(value: ast.AST) -> bool:
        if isinstance(value, (ast.List, ast.Set)) and not value.elts:
            return True
        return (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("list", "set")
            and not value.args
        )

    # -- pass 2: flags ---------------------------------------------------
    def run(self) -> List[Violation]:
        self._collect(self.fn)
        for stmt in self.fn.body:
            self._visit(stmt, accumulator=None)
        return self.violations

    def _visit(self, node: ast.AST, accumulator: Optional[Set[str]]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.violations.extend(
                _FunctionScan(self.checker, self.source, node).run()
            )
            return
        if isinstance(node, ast.Call):
            self._check_call(node, accumulator)
        if isinstance(node, ast.For):
            self._check_loop(node, accumulator)
            return  # _check_loop recursed with its own accumulator
        for child in ast.iter_child_nodes(node):
            self._visit(child, accumulator)

    def _check_loop(
        self, node: ast.For, outer: Optional[Set[str]]
    ) -> None:
        if self._is_per_element_range(node.iter):
            self.violations.append(
                self.checker.violation(
                    self.source,
                    node,
                    "per-element loop over array rows (for ... in "
                    "range(len/shape)) in a hot path — vectorize across "
                    "rows instead",
                )
            )
        accumulated: Set[str] = set()
        for child in ast.iter_child_nodes(node):
            self._visit(child, accumulated)
        if accumulated:
            names = ", ".join(repr(name) for name in sorted(accumulated))
            self.violations.append(
                self.checker.violation(
                    self.source,
                    node,
                    f"loop accumulates into {names} via append/add in a hot "
                    "path — preallocate or build with one vectorized "
                    "concatenation",
                )
            )

    def _is_per_element_range(self, iter_node: ast.AST) -> bool:
        if not (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id == "range"
        ):
            return False
        for arg in iter_node.args:
            if _is_len_or_shape(arg):
                return True
            if isinstance(arg, ast.Name) and arg.id in self.length_aliases:
                return True
        return False

    def _check_call(
        self, node: ast.Call, accumulator: Optional[Set[str]]
    ) -> None:
        func = node.func
        # np.add.at(...)
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "at"
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "add"
            and _is_numpy_name(func.value.value)
        ):
            self.violations.append(
                self.checker.violation(
                    self.source,
                    node,
                    "np.add.at buffered scatter in a hot path — use the "
                    "fused per-offset scatter (out[rows] += contribution)",
                )
            )
        # local_list.append(...) / local_set.add(...) inside a loop
        if (
            accumulator is not None
            and isinstance(func, ast.Attribute)
            and func.attr in ("append", "add")
            and isinstance(func.value, ast.Name)
            and func.value.id in self.collections
        ):
            accumulator.add(func.value.id)
        # x.astype(np.float32) / np.float32(x) narrowing
        narrowed = None
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "astype"
            and node.args
        ):
            narrowed = _narrowing_dtype(node.args[0])
        elif isinstance(func, ast.Attribute) and _is_numpy_name(func.value):
            if func.attr in _NARROWING and node.args:
                narrowed = func.attr
        if narrowed is not None and not self.routed:
            self.violations.append(
                self.checker.violation(
                    self.source,
                    node,
                    f"explicit {narrowed} narrowing in a hot path not routed "
                    "through the session precision/quantization settings — "
                    "ad-hoc casts break backend bit-identity",
                )
            )


@register_checker
class HotPathChecker(Checker):
    rule = "hot-path"
    description = (
        "no np.add.at, per-element loops, collection-append accumulation, "
        "or unrouted float narrowing in the engine/matching hot paths"
    )
    # ``*engine/*.py`` covers the whole engine package, including the
    # mapping-ops subsystem (mapping.py, mapping_delta.py); the point-
    # based layers ride the mapping hot path too, so they are scoped in
    # alongside the rulebook builder.
    scope = (
        "*engine/*.py",
        "*sparse/ops.py",
        "*nn/rulebook.py",
        "*nn/point_layers.py",
    )

    def check(self, project: Project) -> List[Violation]:
        violations: List[Violation] = []
        for source in self.scoped_files(project):
            for node in source.tree.body:
                violations.extend(self._scan_scope(source, node))
        return violations

    def _scan_scope(self, source: SourceFile, node: ast.AST) -> List[Violation]:
        """Scan top-level defs and class methods as separate functions."""
        out: List[Violation] = []
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.extend(_FunctionScan(self, source, node).run())
        elif isinstance(node, ast.ClassDef):
            for stmt in node.body:
                out.extend(self._scan_scope(source, stmt))
        return out
