"""``spawn-safety``: sharded spec payloads must survive pickle + spawn.

:class:`~repro.engine.backend.ShardedProcessBackend` ships its worker
state as one pickled ``(net, precision, quantization)`` blob, so every
object reachable from a network module or quantization spec crosses a
process boundary — under ``spawn`` (macOS/Windows default, and a CI
leg) with *no* shared interpreter state to lean on.  PR 5's
stale-weights bug lived exactly in this seam.  In the reachable set
(``engine/``, ``nn/``, ``quant/``) this rule flags:

* ``lambda`` (or a locally defined closure) stored on ``self`` or as a
  class attribute — lambdas and local functions do not pickle, so the
  first spawn dispatch dies with an opaque ``PicklingError``;
* ``lambda`` passed directly into ``pickle.dumps(...)``;
* mutable literals (``[]`` / ``{}`` / set displays) as class
  attributes — shared across instances in the parent but silently
  *copied per instance* by pickle, so parent-side mutation diverges
  from what workers see (module-level mutable state in miniature).

Consumed-immediately lambdas (cache factory thunks and the like) are
fine: only values *stored* on classes/instances or pickled directly are
reachable from a payload.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.lint.base import (
    Checker,
    Project,
    SourceFile,
    Violation,
    register_checker,
)


def _assigned_values(node: ast.AST):
    if isinstance(node, ast.Assign):
        for target in node.targets:
            yield target, node.value
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        yield node.target, node.value


def _is_mutable_literal(value: ast.AST) -> bool:
    return isinstance(
        value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    )


def _local_function_names(fn: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not fn:
                names.add(node.name)
    return names


@register_checker
class SpawnSafetyChecker(Checker):
    rule = "spawn-safety"
    description = (
        "no lambdas/closures stored on payload-reachable objects, no "
        "lambdas pickled directly, no mutable class attributes in the "
        "sharded spec payload's reachable set"
    )
    # The runtime cluster modules are in scope too: everything they
    # pickle crosses the wire, so the same spawn/pickle safety rules
    # apply to the coordinator, the worker, and the frame codec.
    scope = (
        "*engine/*.py",
        "*nn/*.py",
        "*quant/*.py",
        "*runtime/wire.py",
        "*runtime/worker.py",
        "*runtime/cluster.py",
    )

    def check(self, project: Project) -> List[Violation]:
        violations: List[Violation] = []
        for source in self.scoped_files(project):
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef):
                    violations.extend(self._check_class(source, node))
                elif isinstance(node, ast.Call):
                    violations.extend(self._check_pickle_call(source, node))
        return violations

    def _check_class(
        self, source: SourceFile, cls: ast.ClassDef
    ) -> List[Violation]:
        out: List[Violation] = []
        for stmt in cls.body:
            for _target, value in _assigned_values(stmt):
                if isinstance(value, ast.Lambda):
                    out.append(
                        self.violation(
                            source,
                            stmt,
                            f"class {cls.name!r} stores a lambda as a class "
                            "attribute — lambdas do not pickle, so any "
                            "instance reachable from a sharded spec payload "
                            "breaks under spawn",
                        )
                    )
                elif _is_mutable_literal(value):
                    out.append(
                        self.violation(
                            source,
                            stmt,
                            f"class {cls.name!r} has a mutable class "
                            "attribute — shared in-process but copied per "
                            "instance by pickle, so worker state diverges "
                            "from the parent; use an instance field or an "
                            "immutable tuple",
                        )
                    )
        for method in cls.body:
            if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out.extend(self._check_method(source, cls, method))
        return out

    def _check_method(
        self, source: SourceFile, cls: ast.ClassDef, method: ast.AST
    ) -> List[Violation]:
        out: List[Violation] = []
        local_defs = _local_function_names(method)
        for node in ast.walk(method):
            for target, value in _assigned_values(node):
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                if isinstance(value, ast.Lambda):
                    out.append(
                        self.violation(
                            source,
                            node,
                            f"{cls.name}.{method.name} stores a lambda on "
                            "self — instances reachable from a sharded spec "
                            "payload become unpicklable under spawn",
                        )
                    )
                elif isinstance(value, ast.Name) and value.id in local_defs:
                    out.append(
                        self.violation(
                            source,
                            node,
                            f"{cls.name}.{method.name} stores the local "
                            f"function {value.id!r} on self — local closures "
                            "do not pickle, breaking sharded spec payloads "
                            "under spawn",
                        )
                    )
        return out

    def _check_pickle_call(
        self, source: SourceFile, node: ast.Call
    ) -> List[Violation]:
        func = node.func
        is_dumps = (
            isinstance(func, ast.Attribute)
            and func.attr in ("dumps", "dump")
            and isinstance(func.value, ast.Name)
            and func.value.id == "pickle"
        )
        if not is_dumps:
            return []
        out: List[Violation] = []
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            for child in ast.walk(arg):
                if isinstance(child, ast.Lambda):
                    out.append(
                        self.violation(
                            source,
                            node,
                            "lambda passed into pickle.dumps — lambdas do "
                            "not pickle; use a module-level function",
                        )
                    )
        return out
