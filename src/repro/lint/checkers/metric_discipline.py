"""``metric-discipline``: declared metrics are live, and labels agree.

A metric declared on a :class:`~repro.obs.metrics.MetricRegistry` but
never incremented is worse than no metric: dashboards and alerts built
on it read a permanent zero and *look* healthy.  A metric mutated with
the wrong label set is nearly as bad — ``labels()`` raises or a new
series silently forks away from the one the dashboard watches.  This
rule closes both gaps project-wide:

* every ``registry.counter/gauge/histogram("name", ...)`` declaration
  (string-literal name) must have at least one mutating call site
  (``inc`` / ``dec`` / ``set`` / ``observe`` / ``sync_to``) somewhere in
  the project — found through the attribute or variable the metric was
  bound to, through method-local aliases of ``self.<attr>``, or chained
  directly on the declaration;
* that call site must be **reachable**: in module-level code, in a
  public function/method, or reachable from one through the call graph
  (functions referenced as bare callables count as entry points — a
  callback registration keeps its target live);
* every mutating or reading call site whose keyword arguments are
  explicit (no ``**kwargs``) must pass exactly the declared label set —
  value-carrying keywords (``amount`` / ``value`` / ``q``) excluded.

Receivers that do not trace back to a declaration are ignored
(``asyncio.Event().set()`` is not a gauge), and a variable bound to
more than one label shape skips the label check rather than guess —
unknown never false-positives.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.base import (
    Checker,
    Project,
    SourceFile,
    Violation,
    register_checker,
)
from repro.lint.graph import module_name_for

_DECL_METHODS = frozenset(("counter", "gauge", "histogram"))
_MUTATORS = frozenset(("inc", "dec", "set", "observe", "sync_to"))
_READERS = frozenset(("value", "count", "sum", "quantile"))
#: keywords that carry values, not labels
_VALUE_KWARGS = frozenset(("amount", "value", "q"))


@dataclass
class _Declaration:
    name: str  # the metric's registered string name
    labels: Tuple[str, ...]
    rel: str
    line: int
    col: int
    #: qualname of the enclosing function, or None at module level
    owner: Optional[str]


@dataclass
class _UseSite:
    decl_names: Tuple[str, ...]  # candidate metrics this receiver may be
    mutates: bool
    kwargs: Optional[Tuple[str, ...]]  # None when **kwargs / *args present
    rel: str
    line: int
    col: int
    owner: Optional[str]


def _literal_labels(call: ast.Call) -> Tuple[str, ...]:
    for kw in call.keywords:
        if kw.arg == "labels" and isinstance(
            kw.value, (ast.Tuple, ast.List)
        ):
            out = []
            for elt in kw.value.elts:
                if isinstance(elt, ast.Constant) and isinstance(
                    elt.value, str
                ):
                    out.append(elt.value)
            return tuple(out)
    return ()


def _is_declaration(node: ast.Call) -> Optional[str]:
    """The literal metric name when ``node`` declares one, else None."""
    if (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in _DECL_METHODS
        and node.args
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
    ):
        return node.args[0].value
    return None


def _call_kwargs(node: ast.Call) -> Optional[Tuple[str, ...]]:
    """Explicit keyword names at a call site, ``None`` with ``**kwargs``."""
    names: List[str] = []
    for kw in node.keywords:
        if kw.arg is None:  # **kwargs — labels unknowable statically
            return None
        names.append(kw.arg)
    return tuple(sorted(set(names) - _VALUE_KWARGS))


class _ModuleScan(ast.NodeVisitor):
    """Collect declarations and metric use sites in one file."""

    def __init__(self, source: SourceFile, module: str) -> None:
        self.source = source
        self.module = module
        self.declarations: List[_Declaration] = []
        self.uses: List[_UseSite] = []
        self._cls: Optional[str] = None
        self._fn: Optional[str] = None
        #: binding name ("self.X" / "X") -> metric names bound to it
        self.bindings: Dict[str, Set[str]] = {}
        #: per-function local aliases: name -> "self.X" binding key
        self._aliases: Dict[str, str] = {}

    # -- scope tracking -------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        prev = self._cls
        self._cls = node.name if prev is None else f"{prev}.{node.name}"
        self.generic_visit(node)
        self._cls = prev

    def _visit_fn(self, node: ast.AST) -> None:
        prev_fn, prev_aliases = self._fn, self._aliases
        name = (
            f"{self._cls}.{node.name}" if self._cls else node.name
        )
        self._fn = f"{self.module}:{name}"
        self._aliases = {}
        self.generic_visit(node)
        self._fn, self._aliases = prev_fn, prev_aliases

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_fn(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_fn(node)

    # -- bindings -------------------------------------------------------

    def _binding_key(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            alias = self._aliases.get(node.id)
            if alias is not None:
                return alias
            return node.id
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return f"self.{node.attr}"
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        value = node.value
        metric_name = (
            _is_declaration(value) if isinstance(value, ast.Call) else None
        )
        for target in node.targets:
            key = (
                self._binding_key(target)
                if not isinstance(target, (ast.Tuple, ast.List))
                else None
            )
            if key is None:
                continue
            if metric_name is not None:
                self.bindings.setdefault(key, set()).add(metric_name)
            elif isinstance(target, ast.Name):
                # ``lookups = self._m_cache_lookups`` — a local alias of
                # a bound metric attribute
                source_key = self._binding_key(value)
                if source_key is not None and source_key.startswith("self."):
                    self._aliases[target.id] = source_key
        self.generic_visit(node)

    # -- declarations and uses ------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        metric_name = _is_declaration(node)
        if metric_name is not None:
            self.declarations.append(
                _Declaration(
                    name=metric_name,
                    labels=_literal_labels(node),
                    rel=self.source.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    owner=self._fn,
                )
            )
        func = node.func
        if isinstance(func, ast.Attribute) and (
            func.attr in _MUTATORS or func.attr in _READERS
        ):
            decl_names: Tuple[str, ...] = ()
            if isinstance(func.value, ast.Call):
                chained = _is_declaration(func.value)
                if chained is not None:
                    decl_names = (chained,)
            else:
                key = self._binding_key(func.value)
                if key is not None and key in self.bindings:
                    decl_names = tuple(sorted(self.bindings[key]))
            if decl_names:
                self.uses.append(
                    _UseSite(
                        decl_names=decl_names,
                        mutates=func.attr in _MUTATORS,
                        kwargs=_call_kwargs(node),
                        rel=self.source.rel,
                        line=node.lineno,
                        col=node.col_offset,
                        owner=self._fn,
                    )
                )
        self.generic_visit(node)


class _AnchorNode:
    def __init__(self, line: int, col: int = 0) -> None:
        self.lineno = line
        self.col_offset = col


@register_checker
class MetricDisciplineChecker(Checker):
    rule = "metric-discipline"
    description = (
        "every registry-declared metric is mutated somewhere reachable, "
        "with the declared label set at every explicit call site"
    )
    scope = ("*.py",)

    def check(self, project: Project) -> List[Violation]:
        scans: List[_ModuleScan] = []
        for source in self.scoped_files(project):
            module = module_name_for(source.rel)
            if module is None:
                continue
            scan = _ModuleScan(source, module)
            scan.visit(source.tree)
            scans.append(scan)

        declarations: List[_Declaration] = [
            d for scan in scans for d in scan.declarations
        ]
        if not declarations:
            return []  # project registers no metrics: nothing to check
        uses: List[_UseSite] = [u for scan in scans for u in scan.uses]

        # Because one binding can (in principle) hold several metrics, a
        # use site credits every candidate; the shared label check skips
        # ambiguous bindings with conflicting shapes.
        labels_by_metric: Dict[str, Set[Tuple[str, ...]]] = {}
        for decl in declarations:
            labels_by_metric.setdefault(decl.name, set()).add(decl.labels)

        reachable = self._reachable_owners(project, scans)
        mutated: Set[str] = set()
        mutated_reachably: Set[str] = set()
        violations: List[Violation] = []

        for use in uses:
            if use.mutates:
                mutated.update(use.decl_names)
                if use.owner is None or use.owner in reachable:
                    mutated_reachably.update(use.decl_names)
            if use.kwargs is None:
                continue
            shapes = set()
            for name in use.decl_names:
                shapes.update(labels_by_metric.get(name, set()))
            if len(shapes) != 1:
                continue  # ambiguous or unknown shape: do not guess
            (declared,) = shapes
            if tuple(sorted(declared)) != use.kwargs:
                metric = "/".join(use.decl_names)
                violations.append(
                    Violation(
                        file=use.rel,
                        line=use.line,
                        col=use.col,
                        rule=self.rule,
                        message=(
                            f"metric {metric} declared with labels "
                            f"({', '.join(sorted(declared)) or 'none'}) but "
                            f"this call site passes "
                            f"({', '.join(use.kwargs) or 'none'})"
                        ),
                    )
                )

        seen_decl: Set[Tuple[str, str]] = set()
        for decl in declarations:
            if (decl.rel, decl.name) in seen_decl:
                continue
            seen_decl.add((decl.rel, decl.name))
            if decl.name not in mutated:
                violations.append(
                    Violation(
                        file=decl.rel,
                        line=decl.line,
                        col=decl.col,
                        rule=self.rule,
                        message=(
                            f"metric {decl.name} is declared but never "
                            "incremented/observed anywhere in the project "
                            "— dashboards on it read a permanent zero"
                        ),
                    )
                )
            elif decl.name not in mutated_reachably:
                violations.append(
                    Violation(
                        file=decl.rel,
                        line=decl.line,
                        col=decl.col,
                        rule=self.rule,
                        message=(
                            f"metric {decl.name} is only mutated in code "
                            "unreachable from any public entry point"
                        ),
                    )
                )
        return violations

    def _reachable_owners(
        self, project: Project, scans: List[_ModuleScan]
    ) -> Set[str]:
        """Qualnames reachable from the public surface.

        Roots: public functions/methods (no leading underscore),
        dunders (called implicitly), and any function referenced as a
        bare callable somewhere (callback registrations).  Everything
        the call graph reaches from a root is reachable; unresolved
        call sites cannot *extend* reachability, which is why bare-
        callable mentions are roots too.
        """
        graph = project.graph
        roots: List[str] = []
        mentioned: Set[str] = set()
        for info in graph.functions.values():
            for mention in info.mentions:
                leaf = mention.rsplit(".", 1)[-1]
                mentioned.add(leaf)
        for qual, info in graph.functions.items():
            public = not info.name.startswith("_") or (
                info.name.startswith("__") and info.name.endswith("__")
            )
            if public or info.name in mentioned:
                roots.append(qual)
        return graph.reachable_from(roots)
