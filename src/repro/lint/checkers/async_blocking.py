"""``async-blocking``: coroutines in ``runtime/`` must not block the loop.

:class:`~repro.runtime.server.SessionServer` is a single-event-loop
front door: one blocked coroutine stalls every client's ``submit``,
every deadline check, and the dispatcher's coalescing timer.  Inside any
``async def`` in ``runtime/`` this rule flags:

* ``time.sleep(...)`` — parks the whole loop; use ``await
  asyncio.sleep(...)``;
* blocking file IO — ``open(...)`` and the ``Path.read_text`` /
  ``write_text`` / ``read_bytes`` / ``write_bytes`` family; stage the
  IO outside the coroutine or hand it to an executor;
* direct ``session.run(...)`` / ``session.run_batch(...)`` calls —
  inference compute takes milliseconds-to-seconds and must be
  dispatched through the queue/executor seam
  (``loop.run_in_executor(...)`` / ``asyncio.to_thread(...)``) so the
  loop keeps accepting, shedding, and cancelling while the backend
  computes.

Only statements lexically inside the coroutine are checked; nested
``def``s are plain functions whose call sites decide their context.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint.base import (
    Checker,
    Project,
    SourceFile,
    Violation,
    register_checker,
)

_PATH_IO = ("read_text", "write_text", "read_bytes", "write_bytes")


def _imported_bare_sleep(tree: ast.Module) -> bool:
    """Whether ``from time import sleep`` makes bare ``sleep`` blocking."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            if any(alias.name == "sleep" for alias in node.names):
                return True
    return False


def _mentions_session(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and "session" in child.id.lower():
            return True
        if isinstance(child, ast.Attribute) and "session" in child.attr.lower():
            return True
    return False


def _coroutine_statements(fn: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Every node lexically inside ``fn``, stopping at nested defs."""
    stack: List[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@register_checker
class AsyncBlockingChecker(Checker):
    rule = "async-blocking"
    description = (
        "no time.sleep, blocking file IO, or direct session.run/run_batch "
        "compute inside async def bodies in runtime/"
    )
    scope = ("*runtime/*.py",)

    def check(self, project: Project) -> List[Violation]:
        violations: List[Violation] = []
        for source in self.scoped_files(project):
            bare_sleep = _imported_bare_sleep(source.tree)
            for node in ast.walk(source.tree):
                if isinstance(node, ast.AsyncFunctionDef):
                    violations.extend(
                        self._check_coroutine(source, node, bare_sleep)
                    )
        return violations

    def _check_coroutine(
        self,
        source: SourceFile,
        fn: ast.AsyncFunctionDef,
        bare_sleep: bool,
    ) -> List[Violation]:
        out: List[Violation] = []
        for node in _coroutine_statements(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "sleep"
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ) or (
                bare_sleep
                and isinstance(func, ast.Name)
                and func.id == "sleep"
            ):
                out.append(
                    self.violation(
                        source,
                        node,
                        f"time.sleep inside 'async def {fn.name}' parks the "
                        "event loop — use 'await asyncio.sleep(...)'",
                    )
                )
            elif isinstance(func, ast.Name) and func.id == "open":
                out.append(
                    self.violation(
                        source,
                        node,
                        f"blocking file IO (open) inside 'async def "
                        f"{fn.name}' — stage IO outside the coroutine or "
                        "use an executor",
                    )
                )
            elif isinstance(func, ast.Attribute) and func.attr in _PATH_IO:
                out.append(
                    self.violation(
                        source,
                        node,
                        f"blocking file IO ({func.attr}) inside 'async def "
                        f"{fn.name}' — stage IO outside the coroutine or "
                        "use an executor",
                    )
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in ("run", "run_batch")
                and _mentions_session(func.value)
            ):
                out.append(
                    self.violation(
                        source,
                        node,
                        f"direct session.{func.attr}(...) inside 'async def "
                        f"{fn.name}' blocks the event loop for the whole "
                        "inference — dispatch via loop.run_in_executor / "
                        "asyncio.to_thread",
                    )
                )
        return out
