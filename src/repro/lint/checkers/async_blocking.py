"""``async-blocking``: coroutines in ``runtime/`` must not block the loop.

:class:`~repro.runtime.server.SessionServer` is a single-event-loop
front door: one blocked coroutine stalls every client's ``submit``,
every deadline check, and the dispatcher's coalescing timer.  Inside any
``async def`` in ``runtime/`` this rule flags:

* ``time.sleep(...)`` — parks the whole loop; use ``await
  asyncio.sleep(...)``;
* blocking file IO — ``open(...)`` and the ``Path.read_text`` /
  ``write_text`` / ``read_bytes`` / ``write_bytes`` family; stage the
  IO outside the coroutine or hand it to an executor;
* direct ``session.run(...)`` / ``session.run_batch(...)`` calls —
  inference compute takes milliseconds-to-seconds and must be
  dispatched through the queue/executor seam
  (``loop.run_in_executor(...)`` / ``asyncio.to_thread(...)``) so the
  loop keeps accepting, shedding, and cancelling while the backend
  computes.

Detection is **transitive**: beyond calls lexically inside the
coroutine, the rule follows the project call graph through sync helpers
(``await`` targets are coroutines with their own findings) and flags a
call whose closure reaches a blocking primitive, naming the chain.
Functions *passed* to ``loop.run_in_executor`` / ``asyncio.to_thread``
are arguments, not call edges — the executor seam is exactly where
blocking work is supposed to go, and the graph does not cross it.
Nested ``def``s are plain functions whose call sites decide their
context; unresolvable (dynamic) calls are treated as unknown, never
flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.lint.base import (
    Checker,
    Project,
    SourceFile,
    Violation,
    register_checker,
)
from repro.lint.graph import FunctionInfo, ProjectGraph

#: bound on helper-chain depth; real chains are 2-3 deep, this is a
#: guard against pathological graphs, not a tuning knob
_MAX_CHAIN = 8

_PATH_IO = ("read_text", "write_text", "read_bytes", "write_bytes")


def _imported_bare_sleep(tree: ast.Module) -> bool:
    """Whether ``from time import sleep`` makes bare ``sleep`` blocking."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            if any(alias.name == "sleep" for alias in node.names):
                return True
    return False


def _mentions_session(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and "session" in child.id.lower():
            return True
        if isinstance(child, ast.Attribute) and "session" in child.attr.lower():
            return True
    return False


def _coroutine_statements(fn: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Every node lexically inside ``fn``, stopping at nested defs."""
    stack: List[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _blocking_call_text(
    text: str, bare_sleep: bool
) -> Optional[str]:
    """Short description when the dotted call ``text`` blocks, else None.

    Works on the call-site *text* recorded in the graph, so it can scan
    helper bodies without their ASTs.
    """
    if text == "time.sleep" or (bare_sleep and text == "sleep"):
        return "time.sleep"
    if text == "open":
        return "open()"
    if "." in text:
        leaf = text.rsplit(".", 1)[-1]
        if leaf in _PATH_IO:
            return f"Path.{leaf}"
        if leaf in ("run", "run_batch") and "session" in text.lower():
            return f"session.{leaf}"
    return None


@register_checker
class AsyncBlockingChecker(Checker):
    rule = "async-blocking"
    description = (
        "no time.sleep, blocking file IO, or session.run/run_batch "
        "compute inside async def bodies in runtime/ — directly or "
        "through any sync call chain off the executor seam"
    )
    scope = ("*runtime/*.py",)

    def check(self, project: Project) -> List[Violation]:
        violations: List[Violation] = []
        for source in self.scoped_files(project):
            bare_sleep = _imported_bare_sleep(source.tree)
            for node in ast.walk(source.tree):
                if isinstance(node, ast.AsyncFunctionDef):
                    violations.extend(
                        self._check_coroutine(source, node, bare_sleep)
                    )
            violations.extend(self._check_transitive(project, source))
        return violations

    # -- transitive detection through the call graph ---------------------

    def _check_transitive(
        self, project: Project, source: SourceFile
    ) -> List[Violation]:
        summary = project.summary_for(source.rel)
        if summary is None:
            return []
        graph = project.graph
        out: List[Violation] = []
        for info in summary.functions.values():
            if not info.is_async:
                continue
            for call in info.calls:
                target = call.target
                if target is None:
                    continue  # dynamic/external: unknown, not flagged
                callee = graph.function(target)
                if callee is None or callee.is_async:
                    continue  # awaited coroutines carry their own findings
                found = self._find_blocking_chain(graph, callee)
                if found is None:
                    continue
                desc, chain = found
                path = " -> ".join(
                    fn.qualname.split(":", 1)[1] for fn in chain
                )
                out.append(
                    Violation(
                        file=source.rel,
                        line=call.line,
                        col=0,
                        rule=self.rule,
                        message=(
                            f"'async def {info.name}' reaches blocking "
                            f"{desc} through sync call chain {path} — "
                            "dispatch the chain via loop.run_in_executor "
                            "/ asyncio.to_thread or make it non-blocking"
                        ),
                    )
                )
        return out

    def _find_blocking_chain(
        self, graph: ProjectGraph, start: FunctionInfo
    ) -> Optional[Tuple[str, List[FunctionInfo]]]:
        """Shortest helper chain from ``start`` to a blocking primitive,
        breadth-first over resolved sync call edges."""
        frontier: List[Tuple[FunctionInfo, List[FunctionInfo]]] = [
            (start, [start])
        ]
        seen = {start.qualname}
        for _ in range(_MAX_CHAIN):
            next_frontier: List[
                Tuple[FunctionInfo, List[FunctionInfo]]
            ] = []
            for info, chain in frontier:
                bare_sleep = self._module_bare_sleep(graph, info.module)
                for call in info.calls:
                    desc = _blocking_call_text(call.text, bare_sleep)
                    if desc is not None:
                        return desc, chain
                    target = call.target
                    if target is None or target in seen:
                        continue
                    callee = graph.function(target)
                    if callee is None or callee.is_async:
                        continue
                    seen.add(target)
                    next_frontier.append((callee, chain + [callee]))
            if not next_frontier:
                return None
            frontier = next_frontier
        return None

    def _module_bare_sleep(self, graph: ProjectGraph, module: str) -> bool:
        summary = graph.modules.get(module)
        return (
            summary is not None
            and summary.imports.get("sleep") == "time:sleep"
        )

    def _check_coroutine(
        self,
        source: SourceFile,
        fn: ast.AsyncFunctionDef,
        bare_sleep: bool,
    ) -> List[Violation]:
        out: List[Violation] = []
        for node in _coroutine_statements(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "sleep"
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ) or (
                bare_sleep
                and isinstance(func, ast.Name)
                and func.id == "sleep"
            ):
                out.append(
                    self.violation(
                        source,
                        node,
                        f"time.sleep inside 'async def {fn.name}' parks the "
                        "event loop — use 'await asyncio.sleep(...)'",
                    )
                )
            elif isinstance(func, ast.Name) and func.id == "open":
                out.append(
                    self.violation(
                        source,
                        node,
                        f"blocking file IO (open) inside 'async def "
                        f"{fn.name}' — stage IO outside the coroutine or "
                        "use an executor",
                    )
                )
            elif isinstance(func, ast.Attribute) and func.attr in _PATH_IO:
                out.append(
                    self.violation(
                        source,
                        node,
                        f"blocking file IO ({func.attr}) inside 'async def "
                        f"{fn.name}' — stage IO outside the coroutine or "
                        "use an executor",
                    )
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in ("run", "run_batch")
                and _mentions_session(func.value)
            ):
                out.append(
                    self.violation(
                        source,
                        node,
                        f"direct session.{func.attr}(...) inside 'async def "
                        f"{fn.name}' blocks the event loop for the whole "
                        "inference — dispatch via loop.run_in_executor / "
                        "asyncio.to_thread",
                    )
                )
        return out
