"""``wire-drift``: the cluster wire protocol stays closed end to end.

`runtime/wire.py` is the single source of truth for the fleet protocol:
every request constant in ``MessageType`` must have a coordinator that
sends it (``runtime/cluster.py``), a worker branch that handles it
(``runtime/worker.py``), and a row in the ``docs/cluster.md`` wire
table — and the table must not advertise message types the enum no
longer defines.  PR 8's compat rules (additive HEALTH fields, versioned
frame header) only hold if the three views cannot drift apart; this
rule fails the build when they do, mirroring the ``stats-drift`` idiom:
each leg is checked only when its file is part of the linted set, so
fixture projects exercise exactly the legs they define.

Detection is deliberately syntactic and conservative: a *handler* is
any ``MessageType.X`` inside a comparison (``frame.type ==
MessageType.PREPARE``, ``frame.type in (MessageType.A, ...)``); a
*sender* is any ``MessageType.X`` passed as a call argument.  The
request set comes from the ``REQUEST_TYPES`` tuple when ``wire.py``
defines one (falling back to every member except ``OK`` / ``ERROR``),
so reply-only types need no handler branch.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.base import (
    Checker,
    Project,
    SourceFile,
    Violation,
    register_checker,
)

_DOC_ROW_RE = re.compile(r"^\|\s*`([A-Z][A-Z0-9_]*)`")

_REPLY_ONLY_FALLBACK = ("OK", "ERROR")


def _message_type_refs(tree: ast.AST) -> List[Tuple[str, ast.Attribute]]:
    """Every ``MessageType.X`` attribute access under ``tree``."""
    out: List[Tuple[str, ast.Attribute]] = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "MessageType"
        ):
            out.append((node.attr, node))
    return out


def _parse_wire(
    source: SourceFile,
) -> Tuple[Dict[str, int], Optional[Set[str]]]:
    """``(members, request_types)`` of the ``MessageType`` enum.

    ``members`` maps constant name to its definition line;
    ``request_types`` comes from the ``REQUEST_TYPES`` assignment, or is
    ``None`` when ``wire.py`` does not define one.
    """
    members: Dict[str, int] = {}
    request_types: Optional[Set[str]] = None
    for node in source.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "MessageType":
            for item in node.body:
                if (
                    isinstance(item, ast.Assign)
                    and len(item.targets) == 1
                    and isinstance(item.targets[0], ast.Name)
                ):
                    members[item.targets[0].id] = item.lineno
        elif (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "REQUEST_TYPES"
            and isinstance(node.value, (ast.Tuple, ast.List))
        ):
            names = {
                name
                for name, _ in _message_type_refs(node.value)
            }
            if names:
                request_types = names
    return members, request_types


class _AnchorNode:
    """Minimal line/col carrier for :meth:`Checker.violation`."""

    def __init__(self, line: int, col: int = 0) -> None:
        self.lineno = line
        self.col_offset = col


@register_checker
class WireDriftChecker(Checker):
    rule = "wire-drift"
    description = (
        "every MessageType request constant has a cluster.py sender, a "
        "worker.py handler branch, and a docs/cluster.md wire-table row "
        "(and the table names no unknown types)"
    )
    scope = (
        "*runtime/wire.py",
        "*runtime/worker.py",
        "*runtime/cluster.py",
    )

    def _find(self, project: Project, suffix: str) -> Optional[SourceFile]:
        for rel in sorted(project.files):
            if rel.endswith(suffix):
                return project.files[rel]
        return None

    def check(self, project: Project) -> List[Violation]:
        wire = self._find(project, "runtime/wire.py")
        if wire is None:
            return []  # protocol not part of this source set
        members, request_types = _parse_wire(wire)
        if not members:
            return []
        if request_types is None:
            request_types = {
                name
                for name in members
                if name not in _REPLY_ONLY_FALLBACK
            }

        worker = self._find(project, "runtime/worker.py")
        cluster = self._find(project, "runtime/cluster.py")
        doc_path = project.root / "docs" / "cluster.md"
        doc_text = (
            doc_path.read_text(encoding="utf-8")
            if doc_path.is_file()
            else None
        )

        violations: List[Violation] = []

        def member_violation(name: str, message: str) -> None:
            violations.append(
                self.violation(wire, _AnchorNode(members[name]), message)
            )

        handled: Set[str] = set()
        if worker is not None:
            for node in ast.walk(worker.tree):
                if isinstance(node, ast.Compare):
                    handled.update(
                        name for name, _ in _message_type_refs(node)
                    )
            for name in sorted(request_types):
                if name in members and name not in handled:
                    member_violation(
                        name,
                        f"MessageType.{name} has no handler branch in "
                        "runtime/worker.py — workers would answer it with "
                        "a protocol error",
                    )
            self._check_unknown_refs(violations, worker, members)

        if cluster is not None:
            sent: Set[str] = set()
            for node in ast.walk(cluster.tree):
                if isinstance(node, ast.Call):
                    for arg in list(node.args) + [
                        kw.value for kw in node.keywords
                    ]:
                        sent.update(
                            name for name, _ in _message_type_refs(arg)
                        )
            for name in sorted(request_types):
                if name in members and name not in sent:
                    member_violation(
                        name,
                        f"MessageType.{name} is never sent by "
                        "runtime/cluster.py — dead protocol surface or a "
                        "missing coordinator path",
                    )
            self._check_unknown_refs(violations, cluster, members)

        if doc_text is not None:
            documented: Dict[str, int] = {}
            for lineno, line in enumerate(doc_text.splitlines(), start=1):
                match = _DOC_ROW_RE.match(line.strip())
                if match:
                    documented.setdefault(match.group(1), lineno)
            for name in sorted(members):
                if name not in documented:
                    member_violation(
                        name,
                        f"MessageType.{name} is missing from the "
                        "docs/cluster.md wire table",
                    )
            for name in sorted(documented):
                if name not in members:
                    violations.append(
                        Violation(
                            file="docs/cluster.md",
                            line=documented[name],
                            col=0,
                            rule=self.rule,
                            message=(
                                f"docs/cluster.md wire table names "
                                f"`{name}`, which MessageType does not "
                                "define"
                            ),
                        )
                    )
        return violations

    def _check_unknown_refs(
        self,
        violations: List[Violation],
        source: SourceFile,
        members: Dict[str, int],
    ) -> None:
        seen: Set[str] = set()
        for name, node in _message_type_refs(source.tree):
            if name not in members and name not in seen:
                seen.add(name)
                violations.append(
                    self.violation(
                        source,
                        node,
                        f"MessageType.{name} is referenced but not defined "
                        "in runtime/wire.py — AttributeError at dispatch "
                        "time",
                    )
                )
