"""Built-in rules of ``repro.lint``.

Importing this package registers every rule with the checker registry
(each module applies :func:`repro.lint.base.register_checker` at import
time); :func:`repro.lint.base.all_checkers` triggers the import lazily.
"""

from repro.lint.checkers import (  # noqa: F401
    async_blocking,
    backend_contract,
    hot_path,
    lock_discipline,
    metric_discipline,
    spawn_safety,
    stats_drift,
    wire_drift,
)

__all__ = [
    "async_blocking",
    "backend_contract",
    "hot_path",
    "lock_discipline",
    "metric_discipline",
    "spawn_safety",
    "stats_drift",
    "wire_drift",
]
