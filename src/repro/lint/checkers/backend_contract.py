"""``backend-contract``: registered backends must honor the seam.

Every class handed to :func:`repro.engine.backend.register_backend` is a
compute engine the session will drive blind — the registry erases the
type, so a missing or mis-shaped method surfaces only at serve time,
deep inside a dispatch.  This rule proves the contract statically:

* registry keys are string literals (greppable, and statically
  checkable for duplicates) and no key is registered twice without
  ``overwrite=True``;
* the registered class provides a *concrete* implementation — own or
  inherited, but not a bare ``raise NotImplementedError`` stub — of the
  full :class:`~repro.engine.backend.ExecutionBackend` surface:
  ``prepare`` / ``execute`` / ``execute_batch`` / ``refresh`` /
  ``capabilities`` / ``close``;
* each implementation's signature is call-compatible with how the
  session invokes it (positional arity, plus the ``stats=`` keyword on
  the execute pair).

Zero-arg factory functions and lambdas are legal registry values but
cannot be analyzed; only classes resolvable inside the linted source
set are checked.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.lint.base import (
    Checker,
    Project,
    SourceFile,
    Violation,
    register_checker,
)

#: method -> (positional call arity including self, required keyword).
_SURFACE: Dict[str, Tuple[int, Optional[str]]] = {
    "prepare": (2, None),
    "execute": (5, "stats"),
    "execute_batch": (5, "stats"),
    "refresh": (4, None),
    "capabilities": (1, None),
    "close": (1, None),
}


def _is_register_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "register_backend"
    if isinstance(func, ast.Attribute):
        return func.attr == "register_backend"
    return False


def _call_argument(node: ast.Call, index: int, keyword: str):
    if len(node.args) > index:
        return node.args[index]
    for kw in node.keywords:
        if kw.arg == keyword:
            return kw.value
    return None


def _has_overwrite(node: ast.Call) -> bool:
    value = _call_argument(node, 2, "overwrite")
    return isinstance(value, ast.Constant) and bool(value.value)


def _docstring_stripped(body: List[ast.stmt]) -> List[ast.stmt]:
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        return body[1:]
    return body


def _is_abstract(fn: ast.FunctionDef) -> bool:
    """A body that is nothing but ``raise NotImplementedError`` (+docstring)."""
    body = _docstring_stripped(fn.body)
    if len(body) != 1 or not isinstance(body[0], ast.Raise):
        return False
    exc = body[0].exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    return isinstance(exc, ast.Name) and exc.id == "NotImplementedError"


def _signature_issue(
    fn: ast.FunctionDef, arity: int, keyword: Optional[str]
) -> Optional[str]:
    """Why ``fn`` cannot take the session's call shape, or ``None``."""
    args = fn.args
    positional = list(args.posonlyargs) + list(args.args)
    min_positional = len(positional) - len(args.defaults)
    if min_positional > arity:
        return (
            f"requires {min_positional} positional arguments but callers "
            f"pass {arity}"
        )
    if args.vararg is None and len(positional) < arity:
        return (
            f"accepts at most {len(positional)} positional arguments but "
            f"callers pass {arity}"
        )
    if keyword is not None and args.kwarg is None:
        names = {a.arg for a in positional} | {a.arg for a in args.kwonlyargs}
        if keyword not in names:
            return f"must accept a {keyword!r} keyword argument"
    return None


class _ClassTable:
    """Name-resolvable class definitions across the whole linted set."""

    def __init__(self, project: Project) -> None:
        self.classes: Dict[str, ast.ClassDef] = {}
        for source in project.iter_files(("*.py",)):
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef):
                    self.classes.setdefault(node.name, node)

    def _bases(self, cls: ast.ClassDef) -> List[str]:
        names = []
        for base in cls.bases:
            if isinstance(base, ast.Name):
                names.append(base.id)
            elif isinstance(base, ast.Attribute):
                names.append(base.attr)
        return names

    def resolve_method(
        self, cls_name: str, method: str
    ) -> Optional[Tuple[ast.AST, bool]]:
        """Nearest definition of ``method`` in the resolvable hierarchy.

        Returns ``(node, is_function)`` — depth-first over base names,
        own body first; unresolvable bases contribute nothing (the
        contract must be provable from the linted sources).
        """
        seen = set()
        stack = [cls_name]
        while stack:
            name = stack.pop(0)
            if name in seen:
                continue
            seen.add(name)
            cls = self.classes.get(name)
            if cls is None:
                continue
            for stmt in cls.body:
                if (
                    isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt.name == method
                ):
                    return stmt, True
                if isinstance(stmt, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == method
                    for t in stmt.targets
                ):
                    return stmt, False
            stack.extend(self._bases(cls))
        return None


@register_checker
class BackendContractChecker(Checker):
    rule = "backend-contract"
    description = (
        "classes passed to register_backend implement the full concrete "
        "ExecutionBackend surface with call-compatible signatures, and "
        "registry keys are unique string literals"
    )
    scope = ("*.py",)

    def check(self, project: Project) -> List[Violation]:
        table = _ClassTable(project)
        violations: List[Violation] = []
        first_site: Dict[str, str] = {}
        for source in self.scoped_files(project):
            for node in ast.walk(source.tree):
                if not (isinstance(node, ast.Call) and _is_register_call(node)):
                    continue
                violations.extend(
                    self._check_registration(source, node, table, first_site)
                )
        return violations

    def _check_registration(
        self,
        source: SourceFile,
        node: ast.Call,
        table: _ClassTable,
        first_site: Dict[str, str],
    ) -> List[Violation]:
        out: List[Violation] = []
        key = _call_argument(node, 0, "name")
        factory = _call_argument(node, 1, "factory")
        if key is None or factory is None:
            return out  # malformed call; the runtime raises on its own
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            out.append(
                self.violation(
                    source,
                    node,
                    "backend registry key must be a string literal, not a "
                    "computed expression (static duplicate checking needs "
                    "the literal)",
                )
            )
            key_name = None
        else:
            key_name = key.value
        if key_name is not None:
            site = f"{source.rel}:{node.lineno}"
            if key_name in first_site and not _has_overwrite(node):
                out.append(
                    self.violation(
                        source,
                        node,
                        f"backend key {key_name!r} is registered more than "
                        f"once (first at {first_site[key_name]}); pass "
                        "overwrite=True if the replacement is intentional",
                    )
                )
            else:
                first_site.setdefault(key_name, site)
        if isinstance(factory, ast.Name) and factory.id in table.classes:
            out.extend(
                self._check_contract(source, node, table, factory.id)
            )
        return out

    def _check_contract(
        self,
        source: SourceFile,
        node: ast.Call,
        table: _ClassTable,
        cls_name: str,
    ) -> List[Violation]:
        out: List[Violation] = []
        for method, (arity, keyword) in sorted(_SURFACE.items()):
            resolved = table.resolve_method(cls_name, method)
            if resolved is None:
                out.append(
                    self.violation(
                        source,
                        node,
                        f"registered backend {cls_name!r} does not define "
                        f"{method}() anywhere in its resolvable class "
                        "hierarchy (full ExecutionBackend surface required)",
                    )
                )
                continue
            definition, is_function = resolved
            if not is_function:
                continue  # assigned callable: concrete, shape unknowable
            if _is_abstract(definition):
                out.append(
                    self.violation(
                        source,
                        node,
                        f"registered backend {cls_name!r} only inherits the "
                        f"abstract {method}() stub (raise NotImplementedError)"
                        " — a concrete implementation is required",
                    )
                )
                continue
            issue = _signature_issue(definition, arity, keyword)
            if issue is not None:
                out.append(
                    self.violation(
                        source,
                        node,
                        f"{cls_name}.{method}() is not call-compatible with "
                        f"the ExecutionBackend contract: {issue}",
                    )
                )
        return out
