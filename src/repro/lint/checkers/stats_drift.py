"""``stats-drift``: CLI and docs must reference real stats fields.

The observability surface (``SessionStats``, ``StreamStats``,
``FrameResult``, ``ServeStats``) grows a field or two per PR, and the
consumers live far from the dataclasses: ``cli.py`` formats them into
report lines and ``docs/*.md`` names them in prose.  A renamed or
removed field turns the CLI into an ``AttributeError`` at demo time and
the docs into fiction — neither is caught by the type-less test
surface.  This rule cross-checks both consumers against the dataclass
definitions found in the linted sources:

* in ``cli.py``, receiver types are inferred from the construction
  idioms the CLI actually uses (``InferenceSession(...).stats``,
  ``StreamingRunner(...).run(...)``, ``serve_frames(...)`` tuple
  unpacking, ``for frame in stats.frames``) and every attribute access
  on an inferred receiver must resolve to a field, property, or method;
* in ``docs/*.md``, every ``ClassName.attr`` reference (including the
  ``ClassName.a / b / c`` shorthand the docs use) must resolve the same
  way;
* every ``repro_*`` metric name registered through the
  :mod:`repro.obs.metrics` registry (``.counter(...)`` / ``.gauge(...)``
  / ``.histogram(...)`` with a string-literal name) must appear
  backticked in ``docs/observability.md``, and every backticked
  ``repro_*`` token there must be registered somewhere in the linted
  sources (histogram ``_bucket``/``_sum``/``_count`` series resolve to
  their base name).

Classes absent from the linted sources are skipped — fixture projects
only validate the classes they define.  The metric cross-check is
likewise skipped when the source set registers no metrics.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, List, Optional, Set

from repro.lint.base import (
    Checker,
    Project,
    SourceFile,
    Violation,
    register_checker,
)

_STATS_CLASSES = ("SessionStats", "StreamStats", "FrameResult", "ServeStats")

_DOC_REF = re.compile(
    r"\b(SessionStats|StreamStats|FrameResult|ServeStats)\.(\w+)"
)
# `X.a / b / c` continuation shorthand (possibly across backticks/lines).
_DOC_CONTINUATION = re.compile(r"[ \t`]*/[ \t`\r\n]*(\w+)")

#: Registry declaration methods whose first argument is a metric name.
_METRIC_METHODS = frozenset({"counter", "gauge", "histogram"})
#: Backticked metric tokens in docs — the documented catalog.
_DOC_METRIC = re.compile(r"`(repro_[a-z0-9_]+)`")
#: Prometheus series a histogram expands into; docs may name them.
_SERIES_SUFFIXES = ("_bucket", "_sum", "_count")
_METRIC_DOC = "docs/observability.md"


def _collect_metric_names(project: Project) -> Dict[str, SourceFile]:
    """``repro_*`` names registered via ``.counter/.gauge/.histogram``."""
    declared: Dict[str, SourceFile] = {}
    for source in project.iter_files(("*.py",)):
        for node in ast.walk(source.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _METRIC_METHODS
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
                and node.args[0].value.startswith("repro_")
            ):
                continue
            declared.setdefault(node.args[0].value, source)
    return declared


def _collect_surfaces(project: Project) -> Dict[str, Set[str]]:
    """Field/property/method names of each stats dataclass in the set."""
    surfaces: Dict[str, Set[str]] = {}
    for source in project.iter_files(("*.py",)):
        for node in ast.walk(source.tree):
            if not (
                isinstance(node, ast.ClassDef)
                and node.name in _STATS_CLASSES
            ):
                continue
            attrs = surfaces.setdefault(node.name, set())
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    attrs.add(stmt.target.id)
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            attrs.add(target.id)
                elif isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    attrs.add(stmt.name)
    return surfaces


class _CliInference(ast.NodeVisitor):
    """Track which CLI locals hold which stats class, per function."""

    def __init__(self) -> None:
        # name -> stats class, or the sentinels "_session" / "_runner" /
        # "_server" for producers of stats objects.
        self.env: Dict[str, str] = {}
        self.accesses: List[ast.Attribute] = []

    def _value_type(self, value: ast.AST) -> Optional[str]:
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Name):
                if func.id == "InferenceSession":
                    return "_session"
                if func.id == "StreamingRunner":
                    return "_runner"
                if func.id == "SessionServer":
                    return "_server"
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "run"
                and isinstance(func.value, ast.Name)
                and self.env.get(func.value.id) == "_runner"
            ):
                return "StreamStats"
        if isinstance(value, ast.Attribute) and value.attr == "stats":
            if isinstance(value.value, ast.Name):
                owner = self.env.get(value.value.id)
                if owner == "_session":
                    return "SessionStats"
                if owner == "_server":
                    return "ServeStats"
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        inferred = self._value_type(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name) and inferred is not None:
                self.env[target.id] = inferred
            elif (
                isinstance(target, ast.Tuple)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Name)
                and node.value.func.id in ("serve_frames", "serve")
                and len(target.elts) == 2
                and isinstance(target.elts[1], ast.Name)
            ):
                self.env[target.elts[1].id] = "ServeStats"
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if (
            isinstance(node.target, ast.Name)
            and isinstance(node.iter, ast.Attribute)
            and node.iter.attr == "frames"
            and isinstance(node.iter.value, ast.Name)
            and self.env.get(node.iter.value.id) == "StreamStats"
        ):
            self.env[node.target.id] = "FrameResult"
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name):
            self.accesses.append(node)
        self.generic_visit(node)


@register_checker
class StatsDriftChecker(Checker):
    rule = "stats-drift"
    description = (
        "every SessionStats/StreamStats/FrameResult/ServeStats attribute "
        "referenced in cli.py and docs/*.md exists on the dataclass, and "
        "registered repro_* metric names stay in sync with "
        "docs/observability.md"
    )
    scope = ("*cli.py",)

    def check(self, project: Project) -> List[Violation]:
        surfaces = _collect_surfaces(project)
        violations: List[Violation] = []
        for source in self.scoped_files(project):
            violations.extend(self._check_cli(source, surfaces))
        violations.extend(self._check_docs(project, surfaces))
        violations.extend(self._check_metric_docs(project))
        return violations

    def _check_cli(
        self, source: SourceFile, surfaces: Dict[str, Set[str]]
    ) -> List[Violation]:
        out: List[Violation] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            inference = _CliInference()
            inference.visit(node)
            for access in inference.accesses:
                cls = inference.env.get(access.value.id)  # type: ignore[union-attr]
                if cls not in surfaces:
                    continue
                if access.attr.startswith("__"):
                    continue
                if access.attr not in surfaces[cls]:
                    out.append(
                        self.violation(
                            source,
                            access,
                            f"CLI references {cls}.{access.attr}, which does "
                            f"not exist on the {cls} dataclass — stats-field "
                            "drift",
                        )
                    )
        return out

    def _check_docs(
        self, project: Project, surfaces: Dict[str, Set[str]]
    ) -> List[Violation]:
        out: List[Violation] = []
        docs_dir = Path(project.root) / "docs"
        if not docs_dir.is_dir():
            return out
        for doc in sorted(docs_dir.glob("*.md")):
            try:
                text = doc.read_text(encoding="utf-8")
            except OSError:
                continue
            rel = doc.relative_to(project.root).as_posix()
            for match in _DOC_REF.finditer(text):
                cls = match.group(1)
                if cls not in surfaces:
                    continue
                attrs = [(match.group(2), match.start(2))]
                pos = match.end()
                while True:
                    cont = _DOC_CONTINUATION.match(text, pos)
                    if cont is None:
                        break
                    attrs.append((cont.group(1), cont.start(1)))
                    pos = cont.end()
                for attr, start in attrs:
                    if attr in surfaces[cls]:
                        continue
                    line = text.count("\n", 0, start) + 1
                    out.append(
                        Violation(
                            file=rel,
                            line=line,
                            col=0,
                            rule=self.rule,
                            message=(
                                f"docs reference {cls}.{attr}, which does "
                                f"not exist on the {cls} dataclass — "
                                "stats-field drift"
                            ),
                        )
                    )
        return out

    def _check_metric_docs(self, project: Project) -> List[Violation]:
        """Registered metric names <-> the docs/observability.md catalog."""
        declared = _collect_metric_names(project)
        if not declared:
            return []  # fixture projects without telemetry
        out: List[Violation] = []
        doc_path = Path(project.root) / _METRIC_DOC
        try:
            text = doc_path.read_text(encoding="utf-8")
        except OSError:
            text = ""
        documented = {
            (match.group(1), match.start(1))
            for match in _DOC_METRIC.finditer(text)
        }
        documented_names = {name for name, _ in documented}
        for name in sorted(declared):
            if name in documented_names:
                continue
            out.append(
                Violation(
                    file=declared[name].rel,
                    line=1,
                    col=0,
                    rule=self.rule,
                    message=(
                        f"metric {name} is registered here but missing "
                        f"from the {_METRIC_DOC} catalog — metric-name "
                        "drift"
                    ),
                )
            )
        for name, start in sorted(documented):
            base = name
            for suffix in _SERIES_SUFFIXES:
                if name.endswith(suffix) and name[: -len(suffix)] in declared:
                    base = name[: -len(suffix)]
                    break
            if base in declared:
                continue
            out.append(
                Violation(
                    file=_METRIC_DOC,
                    line=text.count("\n", 0, start) + 1,
                    col=0,
                    rule=self.rule,
                    message=(
                        f"{_METRIC_DOC} documents metric {name}, which is "
                        "never registered in the linted sources — "
                        "metric-name drift"
                    ),
                )
            )
        return out
