"""``lock-discipline``: locked state stays locked, even through helpers.

The metric registry and tracer are the only objects in the stack shared
between the asyncio dispatcher and worker threads (``run_in_executor``
lands backend compute off-loop, and exporters read counters from HTTP
threads).  Their mutable state — ``Metric._values``, series maps, the
tracer ring — is documented as guarded by ``self._lock``; the PR 9
``ServeStats`` counter race was exactly a write that drifted out of its
lock.  This rule proves the discipline statically, per class hierarchy:

* a class participates when it (or a project-resolved base) assigns
  ``self._lock``;
* an attribute is **guarded** when some method outside ``__init__``
  mutates it inside ``with self._lock:`` — the code's own locking is the
  spec, no annotations needed;
* every other mutation of a guarded attribute must also be inside
  ``with self._lock:``, *unless* the call graph proves the enclosing
  method is a private helper whose every known call site already holds
  the lock (directly, or transitively through other always-locked
  helpers).  A public method, a helper with an unlocked caller, or a
  helper with no resolvable callers gets flagged — unknown is treated
  as unlocked.

``__init__`` is exempt (no other thread can hold the instance yet), and
``self._lock`` itself is not a guarded attribute.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.base import (
    Checker,
    Project,
    SourceFile,
    Violation,
    register_checker,
)
from repro.lint.graph import _is_self_lock_with, module_name_for

#: method names that mutate their receiver in place
_MUTATOR_METHODS = frozenset(
    (
        "append",
        "add",
        "update",
        "clear",
        "pop",
        "popitem",
        "extend",
        "remove",
        "discard",
        "insert",
        "setdefault",
        "sort",
    )
)


@dataclass
class _Mutation:
    attr: str
    method: str  # enclosing method name
    line: int
    col: int
    in_lock: bool


@dataclass
class _ClassScan:
    module: str
    name: str
    rel: str
    assigns_lock: bool = False
    mutations: List[_Mutation] = field(default_factory=list)


def _self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _MethodScanner(ast.NodeVisitor):
    """Record every ``self.<attr>`` mutation in one method body."""

    def __init__(self, scan: _ClassScan, method: str) -> None:
        self.scan = scan
        self.method = method
        self._lock_depth = 0

    def _record(self, attr: Optional[str], node: ast.AST) -> None:
        if attr is None or attr == "_lock":
            return
        self.scan.mutations.append(
            _Mutation(
                attr=attr,
                method=self.method,
                line=node.lineno,
                col=node.col_offset,
                in_lock=self._lock_depth > 0,
            )
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested scope

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.AST) -> None:
        locked = _is_self_lock_with(node)
        if locked:
            self._lock_depth += 1
        self.generic_visit(node)
        if locked:
            self._lock_depth -= 1

    def _record_target(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_target(elt)
            return
        attr = _self_attr(target)
        if attr is not None:
            self._record(attr, target)
            return
        # self.X[key] = ... / self.X[key] += ... mutate self.X
        if isinstance(target, ast.Subscript):
            self._record(_self_attr(target.value), target)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_target(target)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # self.X.append(...) and friends mutate self.X in place
        if isinstance(node.func, ast.Attribute) and (
            node.func.attr in _MUTATOR_METHODS
        ):
            self._record(_self_attr(node.func.value), node)
        self.generic_visit(node)

    def scan_body(self, fn: ast.AST) -> None:
        # walk the statement list, not the def node itself — the nested-
        # def skip must not swallow the method being scanned
        for stmt in fn.body:
            self.visit(stmt)


def _scan_class(
    source: SourceFile, module: str, node: ast.ClassDef
) -> _ClassScan:
    scan = _ClassScan(module=module, name=node.name, rel=source.rel)
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for stmt in ast.walk(item):
            if isinstance(stmt, ast.Assign) and any(
                _self_attr(t) == "_lock" for t in stmt.targets
            ):
                scan.assigns_lock = True
        _MethodScanner(scan, item.name).scan_body(item)
    return scan


@register_checker
class LockDisciplineChecker(Checker):
    rule = "lock-discipline"
    description = (
        "state guarded by self._lock in obs/ and runtime/server.py may "
        "only be mutated inside 'with self._lock', including through "
        "call-graph-verified helper methods"
    )
    scope = ("*obs/*.py", "*runtime/server.py")

    def check(self, project: Project) -> List[Violation]:
        graph = project.graph
        scans: Dict[Tuple[str, str], _ClassScan] = {}
        for source in self.scoped_files(project):
            module = module_name_for(source.rel)
            if module is None:
                continue
            for node in source.tree.body:
                if isinstance(node, ast.ClassDef):
                    scans[(module, node.name)] = _scan_class(
                        source, module, node
                    )

        violations: List[Violation] = []
        for (module, cls_name), scan in sorted(scans.items()):
            chain = graph.base_chain(module, cls_name) or [(module, cls_name)]
            family = [scans[key] for key in chain if key in scans]
            if not any(s.assigns_lock for s in family):
                continue  # lock-free class: single-task by design
            guarded: Set[str] = {
                m.attr
                for s in family
                for m in s.mutations
                if m.in_lock and m.method != "__init__"
            }
            if not guarded:
                continue
            held = self._always_locked_methods(graph, module, cls_name, scan)
            for mutation in scan.mutations:
                if (
                    mutation.attr not in guarded
                    or mutation.in_lock
                    or mutation.method == "__init__"
                    or mutation.method in held
                ):
                    continue
                violations.append(
                    Violation(
                        file=scan.rel,
                        line=mutation.line,
                        col=mutation.col,
                        rule=self.rule,
                        message=(
                            f"self.{mutation.attr} is guarded by self._lock "
                            f"but {cls_name}.{mutation.method} mutates it "
                            "outside 'with self._lock' (and the call graph "
                            "cannot prove every caller holds the lock)"
                        ),
                    )
                )
        return violations

    def _always_locked_methods(
        self,
        graph,
        module: str,
        cls_name: str,
        scan: _ClassScan,
    ) -> Set[str]:
        """Private methods of the class whose every known call site holds
        the lock — directly or through another always-locked method."""
        methods = {m.method for m in scan.mutations}
        held = {
            name
            for name in methods
            if name.startswith("_") and not name.startswith("__")
        }
        changed = True
        while changed:
            changed = False
            for name in sorted(held):
                qual = f"{module}:{cls_name}.{name}"
                callers = graph.callers_of(qual)
                ok = bool(callers)
                for info, call in callers:
                    if call.in_lock:
                        continue
                    if (
                        info.module == module
                        and info.cls == cls_name
                        and info.name in held
                        and info.name != name
                    ):
                        continue
                    ok = False
                    break
                if not ok:
                    held.discard(name)
                    changed = True
        return held
