"""Baseline bookkeeping for ``repro.lint``.

A baseline is a committed JSON snapshot of the violations the repo has
accepted (grandfathered or pending): pre-existing findings do not fail
CI, anything new does.  Violations are matched on the line-number-free
fingerprint ``(file, rule, message)`` with a *count budget* per entry,
so unrelated edits that shift code around do not resurrect baselined
findings, while adding a second instance of a baselined pattern in the
same file still trips the gate.

Schema (``results/lint_baseline.json``)::

    {"version": 1,
     "entries": [{"file": ..., "rule": ..., "message": ..., "count": N}]}
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

from repro.lint.base import Violation

_VERSION = 1

Fingerprint = Tuple[str, str, str]


@dataclass
class BaselineComparison:
    """New findings vs. the baseline, plus stale budget it no longer needs."""

    new: List[Violation] = field(default_factory=list)
    #: fingerprint -> how many baselined occurrences have disappeared.
    stale: Dict[Fingerprint, int] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.new


def load_baseline(path: Path) -> Counter:
    """Fingerprint -> accepted count.  A missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return Counter()
    with path.open(encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or data.get("version") != _VERSION:
        raise ValueError(
            f"unsupported lint baseline format in {path} "
            f"(expected version {_VERSION})"
        )
    budget: Counter = Counter()
    for entry in data.get("entries", []):
        fingerprint = (entry["file"], entry["rule"], entry["message"])
        budget[fingerprint] += int(entry.get("count", 1))
    return budget


def save_baseline(path: Path, violations: List[Violation]) -> None:
    """Write the current findings as the new accepted baseline."""
    budget = Counter(v.fingerprint for v in violations)
    entries = [
        {"file": file, "rule": rule, "message": message, "count": count}
        for (file, rule, message), count in sorted(budget.items())
    ]
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"version": _VERSION, "entries": entries}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )


def compare(
    violations: List[Violation], budget: Counter
) -> BaselineComparison:
    """Split findings into within-budget (accepted) and new."""
    remaining = Counter(budget)
    comparison = BaselineComparison()
    for violation in violations:
        if remaining[violation.fingerprint] > 0:
            remaining[violation.fingerprint] -= 1
        else:
            comparison.new.append(violation)
    comparison.stale = {
        fingerprint: count
        for fingerprint, count in remaining.items()
        if count > 0
    }
    return comparison
