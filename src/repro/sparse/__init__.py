"""Sparse 3D tensor substrate.

Voxelized point clouds are represented as COO sparse tensors: an ``(N, 3)``
integer coordinate array plus an ``(N, C)`` feature array over a bounded
3D shape.  The submanifold convolution reference (:mod:`repro.nn`) and the
accelerator encoder (:mod:`repro.arch.encoding`) both build on this
package.
"""

from repro.sparse.coo import SparseTensor3D
from repro.sparse.hashmap import CoordinateHashMap, pack_coords, unpack_coords
from repro.sparse.dense import dense_to_sparse, sparse_to_dense
from repro.sparse.ops import (
    add_sparse,
    concat_features,
    relu,
    scale_features,
    sparse_allclose,
)

__all__ = [
    "SparseTensor3D",
    "CoordinateHashMap",
    "pack_coords",
    "unpack_coords",
    "sparse_to_dense",
    "dense_to_sparse",
    "relu",
    "add_sparse",
    "concat_features",
    "scale_features",
    "sparse_allclose",
]
