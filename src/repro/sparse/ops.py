"""Elementwise and structural operations on sparse tensors.

These are the non-convolutional operations the SS U-Net needs: ReLU,
residual addition, skip-connection concatenation, and channel scaling
(folded batch norm).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import SparseTensor3D


def relu(tensor: SparseTensor3D) -> SparseTensor3D:
    """Elementwise ReLU over the features.

    Note that ReLU may zero individual channels but the *site* stays
    active: submanifold networks keep the sparsity pattern fixed, which is
    exactly the property the accelerator relies on.
    """
    return tensor.map_features(lambda f: np.maximum(f, 0.0))


def scale_features(
    tensor: SparseTensor3D, scale: np.ndarray, bias: np.ndarray | None = None
) -> SparseTensor3D:
    """Per-channel affine transform ``f * scale + bias`` (folded batch norm)."""
    scale = np.asarray(scale, dtype=np.float64).reshape(1, -1)
    if scale.shape[1] != tensor.num_channels:
        raise ValueError(
            f"scale has {scale.shape[1]} channels, tensor has {tensor.num_channels}"
        )
    out = tensor.features * scale
    if bias is not None:
        bias = np.asarray(bias, dtype=np.float64).reshape(1, -1)
        if bias.shape[1] != tensor.num_channels:
            raise ValueError(
                f"bias has {bias.shape[1]} channels, tensor has {tensor.num_channels}"
            )
        out = out + bias
    return tensor.with_features(out)


def _require_same_sites(a: SparseTensor3D, b: SparseTensor3D) -> None:
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.nnz != b.nnz or not np.array_equal(a.coords, b.coords):
        raise ValueError("operands must share the same active sites")


def add_sparse(a: SparseTensor3D, b: SparseTensor3D) -> SparseTensor3D:
    """Site-wise addition of two tensors with identical active sites."""
    _require_same_sites(a, b)
    if a.num_channels != b.num_channels:
        raise ValueError(
            f"channel mismatch: {a.num_channels} vs {b.num_channels}"
        )
    return a.with_features(a.features + b.features)


def concat_features(a: SparseTensor3D, b: SparseTensor3D) -> SparseTensor3D:
    """Channel-wise concatenation (U-Net skip connection join)."""
    _require_same_sites(a, b)
    return a.with_features(np.concatenate([a.features, b.features], axis=1))


def sparse_allclose(
    a: SparseTensor3D,
    b: SparseTensor3D,
    rtol: float = 1e-9,
    atol: float = 1e-9,
) -> bool:
    """Whether two tensors have identical sites and near-equal features."""
    if a.shape != b.shape or a.nnz != b.nnz:
        return False
    if not np.array_equal(a.coords, b.coords):
        return False
    if a.num_channels != b.num_channels:
        return False
    return bool(np.allclose(a.features, b.features, rtol=rtol, atol=atol))
