"""COO sparse 3D tensor with multi-channel features.

:class:`SparseTensor3D` is the common currency of the repository: the
voxelizer produces one, the sparse-NN reference transforms them, and the
accelerator encoder consumes them.  Coordinates are unique ``(x, y, z)``
integer triples inside a bounded ``shape``; each coordinate carries a
``(C,)`` feature vector.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple

import numpy as np

Coord = Tuple[int, int, int]


class SparseTensor3D:
    """A sparse rank-3 tensor with ``C`` feature channels per active site.

    Parameters
    ----------
    coords:
        ``(N, 3)`` integer array of active-site coordinates.  Duplicates
        are rejected; use :meth:`from_points` to aggregate duplicates.
    features:
        ``(N, C)`` feature array (a 1D array is promoted to one channel).
    shape:
        Bounds ``(X, Y, Z)``; every coordinate must satisfy
        ``0 <= coord < shape`` per axis.
    """

    def __init__(
        self,
        coords: np.ndarray,
        features: np.ndarray,
        shape: Tuple[int, int, int],
    ) -> None:
        coords = np.asarray(coords, dtype=np.int64)
        if coords.size == 0:
            coords = coords.reshape(0, 3)
        if coords.ndim != 2 or coords.shape[1] != 3:
            raise ValueError(f"coords must be (N, 3), got {coords.shape}")
        features = np.asarray(features)
        if features.ndim == 1:
            features = features.reshape(-1, 1)
        if features.size == 0:
            features = features.reshape(0, features.shape[1] if features.ndim == 2 else 1)
        if features.ndim != 2:
            raise ValueError(f"features must be (N, C), got {features.shape}")
        if len(features) != len(coords):
            raise ValueError(
                f"coords ({len(coords)}) and features ({len(features)}) disagree"
            )
        if len(shape) != 3 or any(int(s) <= 0 for s in shape):
            raise ValueError(f"shape must be three positive extents, got {shape}")
        shape = (int(shape[0]), int(shape[1]), int(shape[2]))
        if coords.size:
            if coords.min() < 0:
                raise ValueError("coordinates must be non-negative")
            if (coords >= np.asarray(shape, dtype=np.int64)).any():
                raise ValueError("coordinates out of bounds for shape")

        order = np.lexsort((coords[:, 2], coords[:, 1], coords[:, 0]))
        self.coords = np.ascontiguousarray(coords[order])
        self.features = np.ascontiguousarray(features[order])
        self.shape = shape

        # Coordinates are sorted, so duplicates are adjacent — detected
        # vectorized here; the per-coordinate lookup dict is built lazily
        # (constructing one per tensor made with_features a hot-path cost).
        if len(self.coords) > 1:
            repeated = np.all(self.coords[1:] == self.coords[:-1], axis=1)
            if repeated.any():
                row = int(np.argmax(repeated)) + 1
                key = tuple(int(v) for v in self.coords[row])
                raise ValueError(f"duplicate coordinate {key}")
        self._index: Optional[Dict[Coord, int]] = None
        self._coords_digest: Optional[bytes] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of active (nonzero) sites."""
        return len(self.coords)

    @property
    def num_channels(self) -> int:
        return int(self.features.shape[1])

    @property
    def volume(self) -> int:
        return self.shape[0] * self.shape[1] * self.shape[2]

    @property
    def sparsity(self) -> float:
        """Fraction of *zero* sites, as quoted by the paper (~99.9 %)."""
        if self.volume == 0:
            return 0.0
        return 1.0 - self.nnz / self.volume

    def coords_digest(self) -> bytes:
        """Stable 16-byte digest of the active-site set.

        Coordinates are stored canonically (lexicographically sorted,
        contiguous ``int64``), so two tensors share a digest exactly when
        they share an active-site set.  :class:`repro.nn.rulebook.RulebookCache`
        uses this as its cache key; the tensor is treated as immutable
        (every transformation constructs a new instance), so the digest is
        computed once and memoized.
        """
        if self._coords_digest is None:
            self._coords_digest = hashlib.blake2b(
                self.coords.tobytes(), digest_size=16
            ).digest()
        return self._coords_digest

    @property
    def _coord_index(self) -> Dict[Coord, int]:
        """Lazily built coordinate -> row lookup table."""
        if self._index is None:
            self._index = {
                (x, y, z): row
                for row, (x, y, z) in enumerate(self.coords.tolist())
            }
        return self._index

    def row_of(self, coord: Coord) -> Optional[int]:
        """Row index of ``coord`` or ``None`` when the site is inactive."""
        return self._coord_index.get((int(coord[0]), int(coord[1]), int(coord[2])))

    def __contains__(self, coord: Coord) -> bool:
        return self.row_of(coord) is not None

    def feature_at(self, coord: Coord) -> Optional[np.ndarray]:
        """Feature vector at ``coord`` or ``None`` when inactive."""
        row = self.row_of(coord)
        if row is None:
            return None
        return self.features[row]

    def __repr__(self) -> str:
        return (
            f"SparseTensor3D(nnz={self.nnz}, channels={self.num_channels}, "
            f"shape={self.shape}, sparsity={self.sparsity:.4%})"
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_points(
        cls,
        coords: np.ndarray,
        features: Optional[np.ndarray],
        shape: Tuple[int, int, int],
        reduce: str = "mean",
    ) -> "SparseTensor3D":
        """Build a tensor from possibly-duplicated integer points.

        Duplicate coordinates are aggregated with ``reduce`` (``"mean"``,
        ``"sum"`` or ``"max"``).  ``features=None`` assigns a single
        occupancy channel of ones.
        """
        coords = np.asarray(coords, dtype=np.int64)
        if coords.size == 0:
            empty = np.zeros((0, 1 if features is None else np.asarray(features).shape[-1]))
            return cls(coords.reshape(0, 3), empty, shape)
        if features is None:
            features = np.ones((len(coords), 1), dtype=np.float64)
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features.reshape(-1, 1)
        if reduce not in ("mean", "sum", "max"):
            raise ValueError(f"unknown reduce {reduce!r}")

        unique, inverse = np.unique(coords, axis=0, return_inverse=True)
        channels = features.shape[1]
        accum = np.zeros((len(unique), channels), dtype=np.float64)
        if reduce == "max":
            accum.fill(-np.inf)
            np.maximum.at(accum, inverse, features)
        else:
            np.add.at(accum, inverse, features)
            if reduce == "mean":
                counts = np.bincount(inverse, minlength=len(unique)).astype(np.float64)
                accum /= counts[:, None]
        return cls(unique, accum, shape)

    @classmethod
    def empty(cls, shape: Tuple[int, int, int], channels: int = 1) -> "SparseTensor3D":
        """An all-zero tensor with no active sites."""
        return cls(
            np.zeros((0, 3), dtype=np.int64),
            np.zeros((0, channels), dtype=np.float64),
            shape,
        )

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def with_features(self, features: np.ndarray) -> "SparseTensor3D":
        """Same active sites, new features (row-aligned with ``self.coords``).

        This is the layer-output hot path (every convolution, ReLU and
        batch norm rewraps features), so it bypasses the constructor:
        the coordinates are already canonically sorted and
        duplicate-free, and tensors are immutable by convention, so the
        coordinate array, the memoized digest, and the lazy coordinate
        index are shared with the source tensor — rulebook-cache lookups
        on layer outputs stay hash-free and no re-sorting happens.  The
        feature array is copied, preserving the constructor's ownership
        semantics: the new tensor never aliases the caller's buffer (or
        a batch-output stack), so later mutation of the input cannot
        corrupt it.
        """
        features = np.asarray(features)
        if features.ndim == 1:
            features = features.reshape(-1, 1)
        if features.ndim != 2 or len(features) != self.nnz:
            raise ValueError(
                f"features must be ({self.nnz}, C), got {features.shape}"
            )
        out = SparseTensor3D.__new__(SparseTensor3D)
        out.coords = self.coords
        out.features = np.array(features, order="C", copy=True)
        out.shape = self.shape
        out._index = self._index
        out._coords_digest = self._coords_digest
        return out

    def map_features(self, fn) -> "SparseTensor3D":
        """Apply ``fn`` to the feature matrix and rewrap."""
        return self.with_features(fn(self.features))

    def occupancy(self) -> "SparseTensor3D":
        """Tensor with the same sites and a single all-ones channel."""
        return self.with_features(np.ones((self.nnz, 1), dtype=np.float64))

    def dense(self) -> np.ndarray:
        """Materialize as a dense ``(X, Y, Z, C)`` array."""
        out = np.zeros(self.shape + (self.num_channels,), dtype=self.features.dtype)
        if self.nnz:
            out[self.coords[:, 0], self.coords[:, 1], self.coords[:, 2]] = self.features
        return out

    def crop(self, lo: Coord, hi: Coord) -> "SparseTensor3D":
        """Sites with ``lo <= coord < hi``, re-based to origin ``lo``."""
        lo_arr = np.asarray(lo, dtype=np.int64)
        hi_arr = np.asarray(hi, dtype=np.int64)
        if (hi_arr <= lo_arr).any():
            raise ValueError("crop bounds must satisfy lo < hi per axis")
        keep = np.all((self.coords >= lo_arr) & (self.coords < hi_arr), axis=1)
        new_shape = tuple(int(v) for v in (hi_arr - lo_arr))
        return SparseTensor3D(
            self.coords[keep] - lo_arr, self.features[keep], new_shape
        )

    def translate(self, offset: Coord, shape: Optional[Tuple[int, int, int]] = None) -> "SparseTensor3D":
        """Shift every site by ``offset`` (new shape defaults to current)."""
        moved = self.coords + np.asarray(offset, dtype=np.int64)
        return SparseTensor3D(moved, self.features.copy(), shape or self.shape)
