"""Conversions between dense arrays and :class:`SparseTensor3D`."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.sparse.coo import SparseTensor3D


def sparse_to_dense(tensor: SparseTensor3D) -> np.ndarray:
    """Materialize ``tensor`` as a dense ``(X, Y, Z, C)`` array."""
    return tensor.dense()


def dense_to_sparse(array: np.ndarray, tol: float = 0.0) -> SparseTensor3D:
    """Build a sparse tensor from a dense ``(X, Y, Z)`` or ``(X, Y, Z, C)`` array.

    A site is active when any channel's magnitude exceeds ``tol``.
    """
    array = np.asarray(array)
    if array.ndim == 3:
        array = array[..., None]
    if array.ndim != 4:
        raise ValueError(f"expected (X, Y, Z[, C]) array, got shape {array.shape}")
    magnitude = np.abs(array).max(axis=-1)
    active = np.argwhere(magnitude > tol)
    features = array[active[:, 0], active[:, 1], active[:, 2]]
    shape: Tuple[int, int, int] = (
        int(array.shape[0]),
        int(array.shape[1]),
        int(array.shape[2]),
    )
    return SparseTensor3D(active, features, shape)
