"""Open-addressing hash map over packed 3D integer coordinates.

The matching operation of a submanifold convolution must answer "is there
a nonzero activation at coordinate ``p + offset``" for every nonzero
``p`` and every kernel offset.  The reference implementation answers these
queries with this hash map, which is also the software analogue of the
coordinate lookup hardware in accelerators such as PointAcc.

Coordinates are packed into a single non-negative ``int64`` key with 21
bits per axis, supporting grids up to ``2**21`` per side — far beyond the
``192^3`` feature maps used in the paper.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

_AXIS_BITS = 21
_AXIS_MASK = (1 << _AXIS_BITS) - 1
_EMPTY = np.int64(-1)


def pack_coords(coords: np.ndarray) -> np.ndarray:
    """Pack an ``(N, 3)`` non-negative integer array into ``(N,)`` int64 keys."""
    coords = np.asarray(coords, dtype=np.int64)
    if coords.ndim != 2 or coords.shape[1] != 3:
        raise ValueError(f"expected (N, 3) coordinates, got shape {coords.shape}")
    if coords.size and (coords.min() < 0 or coords.max() > _AXIS_MASK):
        raise ValueError(
            f"coordinates must lie in [0, {_AXIS_MASK}] per axis for packing"
        )
    return (
        (coords[:, 0] << (2 * _AXIS_BITS))
        | (coords[:, 1] << _AXIS_BITS)
        | coords[:, 2]
    )


def unpack_coords(keys: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_coords`."""
    keys = np.asarray(keys, dtype=np.int64)
    x = (keys >> (2 * _AXIS_BITS)) & _AXIS_MASK
    y = (keys >> _AXIS_BITS) & _AXIS_MASK
    z = keys & _AXIS_MASK
    return np.stack([x, y, z], axis=1)


class CoordinateHashMap:
    """Open-addressing (linear probing) map from packed coordinates to row ids.

    The table stores ``int64`` keys and ``int64`` values in flat NumPy
    arrays.  Load factor is kept below 0.7 by construction.
    """

    def __init__(self, expected_size: int = 64) -> None:
        capacity = 16
        while capacity < max(16, int(expected_size / 0.5) + 1):
            capacity *= 2
        self._keys = np.full(capacity, _EMPTY, dtype=np.int64)
        self._values = np.full(capacity, _EMPTY, dtype=np.int64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        return int(self._keys.shape[0])

    def _slot(self, key: int) -> int:
        # Fibonacci hashing spreads consecutive packed keys well; Python
        # ints are used so the 64-bit wraparound is explicit.
        h = (int(key) * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        return h & (self.capacity - 1)

    def _grow(self) -> None:
        old_keys = self._keys
        old_values = self._values
        new_capacity = self.capacity * 2
        self._keys = np.full(new_capacity, _EMPTY, dtype=np.int64)
        self._values = np.full(new_capacity, _EMPTY, dtype=np.int64)
        self._size = 0
        occupied = old_keys != _EMPTY
        for key, value in zip(old_keys[occupied], old_values[occupied]):
            self.insert(int(key), int(value))

    def insert(self, key: int, value: int) -> None:
        """Insert or overwrite the value stored for ``key``."""
        if key < 0:
            raise ValueError("keys must be non-negative (packed coordinates)")
        if (self._size + 1) / self.capacity > 0.7:
            self._grow()
        mask = self.capacity - 1
        slot = self._slot(key)
        while True:
            existing = self._keys[slot]
            if existing == _EMPTY:
                self._keys[slot] = key
                self._values[slot] = value
                self._size += 1
                return
            if existing == key:
                self._values[slot] = value
                return
            slot = (slot + 1) & mask

    def lookup(self, key: int) -> Optional[int]:
        """Return the value stored for ``key`` or ``None``."""
        mask = self.capacity - 1
        slot = self._slot(key)
        while True:
            existing = self._keys[slot]
            if existing == _EMPTY:
                return None
            if existing == key:
                return int(self._values[slot])
            slot = (slot + 1) & mask

    def __contains__(self, key: int) -> bool:
        return self.lookup(key) is not None

    @classmethod
    def from_coords(cls, coords: np.ndarray) -> "CoordinateHashMap":
        """Build a map from each row of ``coords`` to its row index."""
        coords = np.asarray(coords)
        table = cls(expected_size=len(coords))
        keys = pack_coords(coords)
        for row, key in enumerate(keys.tolist()):
            table.insert(key, row)
        return table

    def lookup_many(self, keys: Iterable[int]) -> np.ndarray:
        """Vector lookup; missing keys map to ``-1``."""
        keys = list(keys)
        out = np.full(len(keys), -1, dtype=np.int64)
        for i, key in enumerate(keys):
            value = self.lookup(int(key))
            if value is not None:
                out[i] = value
        return out
