"""Package version, kept importable without any third-party dependency."""

__version__ = "1.0.0"
