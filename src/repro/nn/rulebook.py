"""Rulebook construction — the reference "matching operation".

A *rulebook* lists, for every kernel offset, the (input row, output row)
pairs that participate in the sparse convolution.  For the submanifold
convolution this is exactly the paper's matching operation (Sec. III-B/C):
each nonzero activation is located and its nonzero neighbors are searched;
each pair corresponds to one *match* ``(A_a, W_b)_c`` in Fig. 5.

Construction is vectorized over the sorted packed coordinate keys, which
doubles as a correctness oracle for the hardware SDMU model.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Tuple

import numpy as np

from repro.sparse.coo import SparseTensor3D
from repro.sparse.hashmap import pack_coords


def kernel_offsets(kernel_size: int, center: bool = True) -> np.ndarray:
    """All ``(K^3, 3)`` integer offsets of a cubic kernel.

    With ``center=True`` the offsets span ``[-K//2, K//2]`` per axis (odd
    ``K``), the convention of submanifold convolution; otherwise they span
    ``[0, K)`` as used by strided sparse convolution.
    """
    if kernel_size <= 0:
        raise ValueError(f"kernel_size must be positive, got {kernel_size}")
    if center and kernel_size % 2 == 0:
        raise ValueError("centered kernels require odd kernel_size")
    base = np.arange(kernel_size)
    if center:
        base = base - kernel_size // 2
    grid = np.stack(np.meshgrid(base, base, base, indexing="ij"), axis=-1)
    return grid.reshape(-1, 3)


@dataclass(frozen=True)
class GatherScatterPlan:
    """Feature-independent execution plan of a rulebook.

    Precomputes everything the fused gather-GEMM-scatter evaluation in
    :func:`repro.nn.functional.apply_rulebook` needs beyond the features
    and weights: the concatenated (offset-major) input rows for one big
    gather, per-offset segment boundaries into that concatenation, and
    contiguous per-offset output-row arrays for the scatter.  Because the
    plan depends only on the matching result it is built once per rulebook
    and amortized across every layer (and frame) that reuses the rulebook.

    A key structural invariant makes the fast scatter possible: within one
    kernel offset every output row appears *at most once* (an output site
    has at most one neighbor per offset), so ``out[rows] += contribution``
    is well-defined without :func:`np.add.at` buffering.
    """

    in_rows: np.ndarray
    segment_starts: np.ndarray
    out_rows: List[np.ndarray]
    active_offsets: List[int]
    total_matches: int


@dataclass
class Rulebook:
    """Matching result of one sparse convolution.

    Attributes
    ----------
    kernel_size:
        Cubic kernel side length ``K``.
    offsets:
        ``(K^3, 3)`` kernel offsets, in the same order as ``rules``.
    rules:
        One ``(n_k, 2)`` int array per offset: columns are
        ``(input_row, output_row)``.
    num_inputs / num_outputs:
        Row counts of the input/output tensors.
    """

    kernel_size: int
    offsets: np.ndarray
    rules: List[np.ndarray]
    num_inputs: int
    num_outputs: int
    _plan: Optional[GatherScatterPlan] = field(
        default=None, repr=False, compare=False
    )
    _transposed: Optional["Rulebook"] = field(
        default=None, repr=False, compare=False
    )
    #: Patch provenance (a :class:`repro.engine.delta.RulebookDelta`) set
    #: by the delta engine's patchers: which pairs were freshly matched
    #: and how old rows map onto new ones.  Backends use it to splice
    #: prepared execution plans instead of re-lowering; ``None`` on
    #: from-scratch rulebooks.
    _splice: Optional[object] = field(default=None, repr=False, compare=False)

    @property
    def total_matches(self) -> int:
        """Total number of (activation, weight) matches — the effective work."""
        return int(sum(len(rule) for rule in self.rules))

    def matches_per_output(self) -> np.ndarray:
        """Histogram: number of matches landing on each output row.

        Vectorized as a single :func:`np.bincount` over the concatenated
        output rows of every offset (each offset's rows are unique, but
        rows repeat *across* offsets — bincount handles both).
        """
        per_offset = [rule[:, 1] for rule in self.rules if len(rule)]
        if not per_offset:
            return np.zeros(self.num_outputs, dtype=np.int64)
        return np.bincount(
            np.concatenate(per_offset), minlength=self.num_outputs
        ).astype(np.int64)

    def plan(self) -> GatherScatterPlan:
        """The memoized :class:`GatherScatterPlan` for this rulebook."""
        if self._plan is None:
            sizes = [len(rule) for rule in self.rules]
            total = int(sum(sizes))
            segment_starts = np.zeros(len(self.rules) + 1, dtype=np.int64)
            np.cumsum(sizes, out=segment_starts[1:])
            if total:
                in_rows = np.concatenate(
                    [rule[:, 0] for rule in self.rules if len(rule)]
                )
            else:
                in_rows = np.zeros(0, dtype=np.int64)
            out_rows = [np.ascontiguousarray(rule[:, 1]) for rule in self.rules]
            active = [k for k, size in enumerate(sizes) if size]
            self._plan = GatherScatterPlan(
                in_rows=in_rows,
                segment_starts=segment_starts,
                out_rows=out_rows,
                active_offsets=active,
                total_matches=total,
            )
        return self._plan

    def transposed(self) -> "Rulebook":
        """The rulebook with input and output roles swapped (memoized).

        Evaluating the transposed rulebook is exactly the transposed
        strided convolution: forward rule ``p -> q`` under offset ``d``
        becomes ``q -> p``.  The ``offsets`` array is kept as the forward
        offsets (it indexes the shared weight tensor), only the row roles
        swap.  Output-row uniqueness per offset is preserved, because each
        forward input row appears at most once per offset.
        """
        if self._transposed is None:
            self._transposed = Rulebook(
                kernel_size=self.kernel_size,
                offsets=self.offsets,
                rules=[
                    np.ascontiguousarray(rule[:, ::-1]) for rule in self.rules
                ],
                num_inputs=self.num_outputs,
                num_outputs=self.num_inputs,
            )
        return self._transposed

    def effective_macs(self, in_channels: int, out_channels: int) -> int:
        """Number of scalar multiply-accumulates implied by the rulebook."""
        return self.total_matches * int(in_channels) * int(out_channels)

    def effective_ops(self, in_channels: int, out_channels: int) -> int:
        """Effective operation count (2 ops per MAC), as reported in GOPS."""
        return 2 * self.effective_macs(in_channels, out_channels)


def lookup_rows(sorted_keys: np.ndarray, query_keys: np.ndarray) -> np.ndarray:
    """Row index of each query key in ``sorted_keys`` or -1 when absent.

    ``sorted_keys`` must be ascending and duplicate-free (the packed-key
    order of a canonical coordinate array).  Shared by the rulebook
    builders here and the delta engine (:mod:`repro.engine.delta`) —
    one implementation of the sorted-membership probe, not three.
    """
    idx = np.searchsorted(sorted_keys, query_keys)
    idx = np.clip(idx, 0, len(sorted_keys) - 1) if len(sorted_keys) else idx
    if len(sorted_keys) == 0:
        return np.full(len(query_keys), -1, dtype=np.int64)
    found = sorted_keys[idx] == query_keys
    return np.where(found, idx, -1)


#: Backwards-compatible private alias (pre-delta-engine name).
_lookup_rows = lookup_rows


def build_submanifold_rulebook(
    tensor: SparseTensor3D, kernel_size: int = 3
) -> Rulebook:
    """Matching operation for a submanifold convolution.

    The output sites equal the input sites.  For output site ``p`` and
    centered offset ``d``, an input contribution exists when ``p + d`` is
    active: ``out[p] += W[d] @ in[p + d]``.
    """
    offsets = kernel_offsets(kernel_size, center=True)
    coords = tensor.coords
    # SparseTensor3D stores coords lexicographically sorted, so the packed
    # keys are ascending and searchsorted applies directly.
    keys = pack_coords(coords) if len(coords) else np.zeros(0, dtype=np.int64)
    shape = np.asarray(tensor.shape, dtype=np.int64)
    rules: List[np.ndarray] = []
    out_rows_all = np.arange(len(coords), dtype=np.int64)
    # per-offset loop (K^3 iterations) building the rulebook's rule list;
    # each iteration is vectorized over all points
    for offset in offsets:  # repro-lint: disable=hot-path
        neighbor = coords + offset[None, :]
        in_bounds = np.all((neighbor >= 0) & (neighbor < shape[None, :]), axis=1)
        rows = np.full(len(coords), -1, dtype=np.int64)
        if in_bounds.any():
            rows[in_bounds] = _lookup_rows(keys, pack_coords(neighbor[in_bounds]))
        valid = rows >= 0
        rules.append(
            np.stack([rows[valid], out_rows_all[valid]], axis=1).astype(np.int64)
        )
    return Rulebook(
        kernel_size=kernel_size,
        offsets=offsets,
        rules=rules,
        num_inputs=len(coords),
        num_outputs=len(coords),
    )


def downsampled_coords(
    coords: np.ndarray, kernel_size: int, stride: int
) -> np.ndarray:
    """Output coordinates of a strided sparse convolution (sorted, unique).

    An output site ``q`` exists when any input ``p`` satisfies
    ``q * stride <= p < q * stride + K`` per axis.  With the usual
    ``K == stride`` downsampling this is just ``unique(p // stride)``.
    """
    if kernel_size == stride:
        down = coords // stride
        return np.unique(down, axis=0)
    if not len(coords):
        return np.zeros((0, 3), dtype=np.int64)
    # An input p activates q = p // stride - s per axis for the shifts s
    # with s * stride < K, i.e. s < ceil(K / stride): one vectorized pass
    # over all points per shift instead of a Python loop per point.
    base = coords // stride
    reach = -(-kernel_size // stride)
    cells = []
    # per-shift loop (<= reach^3 iterations), not per-element
    for shift in np.ndindex(reach, reach, reach):  # repro-lint: disable=hot-path
        q = base - np.asarray(shift, dtype=np.int64)[None, :]
        valid = np.all(q >= 0, axis=1) & np.all(
            q * stride + kernel_size > coords, axis=1
        )
        if valid.any():
            cells.append(q[valid])
    if not cells:
        return np.zeros((0, 3), dtype=np.int64)
    return np.unique(np.concatenate(cells, axis=0), axis=0)


def build_sparse_conv_rulebook(
    tensor: SparseTensor3D, kernel_size: int = 2, stride: int = 2
) -> Tuple[Rulebook, np.ndarray]:
    """Matching for a strided (non-submanifold) sparse convolution.

    Returns the rulebook and the output coordinates.  Offsets are
    corner-based (``[0, K)``): input ``p`` contributes to output ``q``
    under offset ``d`` when ``p == q * stride + d``.
    """
    if stride <= 0:
        raise ValueError(f"stride must be positive, got {stride}")
    coords = tensor.coords
    out_coords = downsampled_coords(coords, kernel_size, stride)
    out_keys = (
        pack_coords(out_coords) if len(out_coords) else np.zeros(0, dtype=np.int64)
    )
    offsets = kernel_offsets(kernel_size, center=False)
    rules: List[np.ndarray] = []
    in_rows_all = np.arange(len(coords), dtype=np.int64)
    # per-offset loop (K^3 iterations) building the rulebook's rule list;
    # each iteration is vectorized over all points
    for offset in offsets:  # repro-lint: disable=hot-path
        shifted = coords - offset[None, :]
        aligned = np.all(shifted % stride == 0, axis=1) & np.all(shifted >= 0, axis=1)
        q = shifted[aligned] // stride
        rows = _lookup_rows(out_keys, pack_coords(q)) if len(q) else np.zeros(0, np.int64)
        valid = rows >= 0
        rules.append(
            np.stack(
                [in_rows_all[aligned][valid], rows[valid]], axis=1
            ).astype(np.int64)
        )
    rulebook = Rulebook(
        kernel_size=kernel_size,
        offsets=offsets,
        rules=rules,
        num_inputs=len(coords),
        num_outputs=len(out_coords),
    )
    return rulebook, out_coords


def get_submanifold_rulebook(
    tensor: SparseTensor3D,
    kernel_size: int = 3,
    cache: Optional["RulebookCache"] = None,
) -> Rulebook:
    """Cache-or-build dispatch for submanifold matching.

    The single place that encodes "a ``None`` cache means build fresh" —
    every consumer (functional convs, the analytical model) goes through
    here so future lookup-semantics changes happen once.
    """
    if cache is not None:
        return cache.submanifold(tensor, kernel_size)
    return build_submanifold_rulebook(tensor, kernel_size)


def get_sparse_conv_rulebook(
    tensor: SparseTensor3D,
    kernel_size: int = 2,
    stride: int = 2,
    cache: Optional["RulebookCache"] = None,
) -> Tuple[Rulebook, np.ndarray]:
    """Cache-or-build dispatch for strided (and transposed) matching."""
    if cache is not None:
        return cache.sparse_conv(tensor, kernel_size, stride)
    return build_sparse_conv_rulebook(tensor, kernel_size, stride)


class RulebookCache:
    """LRU cache of rulebooks keyed on the packed coordinate set.

    The matching operation depends only on the active-site set, the grid
    shape, and the kernel geometry — not on features or weights.  Inside a
    submanifold network every layer at the same U-Net scale therefore
    shares one matching pass, and in a streaming deployment consecutive
    frames with unchanged voxel sets skip matching entirely.

    Keying / invalidation rule
    --------------------------
    The key is ``(kind, kernel_size, stride, grid shape,
    coords_digest)`` where ``coords_digest`` is the BLAKE2b digest of the
    canonically sorted coordinate array
    (:meth:`repro.sparse.coo.SparseTensor3D.coords_digest`).  Tensors are
    immutable by convention (every transformation builds a new instance),
    so there is no explicit invalidation: any operation that changes the
    site set produces a different digest and misses, while site-preserving
    operations (ReLU, folded batch norm, feature replacement) keep the
    digest and hit.

    Entries are evicted least-recently-used beyond ``capacity``.  ``hits``
    and ``misses`` count lookups since construction (or the last
    :meth:`reset_stats`).
    """

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def clear(self) -> None:
        """Drop every cached rulebook (statistics are kept)."""
        self._entries.clear()

    # ------------------------------------------------------------------
    # Key construction (shared with plan re-seeding)
    # ------------------------------------------------------------------
    @staticmethod
    def submanifold_key(tensor: SparseTensor3D, kernel_size: int) -> Hashable:
        """Cache key of a submanifold matching on ``tensor``."""
        return ("sub", int(kernel_size), tensor.shape, tensor.coords_digest())

    @staticmethod
    def sparse_conv_key(
        tensor: SparseTensor3D, kernel_size: int, stride: int
    ) -> Hashable:
        """Cache key of a strided (and transposed) matching on ``tensor``."""
        return (
            "down",
            int(kernel_size),
            int(stride),
            tensor.shape,
            tensor.coords_digest(),
        )

    def _insert(self, key: Hashable, entry: object) -> None:
        """Insert ``entry`` as most-recently-used, evicting beyond capacity."""
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def ensure(self, key: Hashable, entry: object) -> None:
        """Insert ``entry`` under ``key`` without counting a lookup.

        Used by :class:`repro.engine.session.PlanCache` to re-seed
        rulebooks held by a cached network plan, so a warm session stays
        all-hits even after intervening LRU pressure evicted entries.
        """
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        self._insert(key, entry)

    def _lookup(self, key: Hashable, builder):
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry
        self.misses += 1
        entry = builder()
        self._insert(key, entry)
        return entry

    def submanifold(
        self, tensor: SparseTensor3D, kernel_size: int = 3
    ) -> Rulebook:
        """Cached :func:`build_submanifold_rulebook`."""
        key = self.submanifold_key(tensor, kernel_size)
        return self._lookup(
            key, lambda: build_submanifold_rulebook(tensor, kernel_size)
        )

    def sparse_conv(
        self, tensor: SparseTensor3D, kernel_size: int = 2, stride: int = 2
    ) -> Tuple[Rulebook, np.ndarray]:
        """Cached :func:`build_sparse_conv_rulebook`.

        The entry is shared between the downsampling convolution and the
        transposed convolution that reverses it (which calls this with the
        *reference* tensor), so one matching pass serves both directions.
        """
        key = self.sparse_conv_key(tensor, kernel_size, stride)
        return self._lookup(
            key,
            lambda: build_sparse_conv_rulebook(tensor, kernel_size, stride),
        )
