"""Point-based network layers over the mapping-ops subsystem.

The source paper's accelerator serves voxel sparse convolutions; PointAcc
and HLS4PC (PAPERS.md) serve the *point-based* family — PointNet++-style
networks whose structural work is farthest-point sampling, neighborhood
search, and grouping.  This module provides that family's minimal
building blocks on top of :mod:`repro.engine.mapping`:

* :class:`SetAbstraction` — the PointNet++ block: FPS picks centroids, a
  kNN or ball-query search collects each centroid's neighborhood, the
  gathered (relative-position, feature) rows run through a shared MLP,
  and a masked max-pool reduces each neighborhood to one feature row.
* :class:`PointNetClassifier` — a stack of set-abstraction blocks with a
  global-pooled linear head, enough to run a point-based model
  end-to-end through :meth:`repro.engine.session.InferenceSession.run`.

Blocks route every mapping op through a session-owned
:class:`repro.engine.mapping_delta.MappingCache` when one is passed in,
and append each op's :class:`MappingResult` to an optional ``trace`` list
— the estimator replays such traces against the
:class:`repro.arch.mapping_model.MappingCostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.nn.init import kaiming_uniform
from repro.nn.network import Module, Parameter
from repro.sparse.coo import SparseTensor3D


def _mapping():
    # Imported lazily: repro.nn loads before repro.engine in the package
    # graph, so a module-level import would cycle through engine.session.
    from repro.engine import mapping

    return mapping


@dataclass(frozen=True)
class PointNetConfig:
    """Hyperparameters of the minimal PointNet++-style classifier.

    ``radii=None`` groups neighborhoods by kNN; a per-stage tuple of radii
    switches grouping to ball query with ``neighbors`` as the sample cap.
    """

    in_channels: int = 1
    num_classes: int = 8
    centroids: Tuple[int, ...] = (128, 32)
    widths: Tuple[int, ...] = (32, 64)
    neighbors: int = 8
    radii: Optional[Tuple[float, ...]] = None
    seed: int = 0


class SetAbstraction(Module):
    """One PointNet++ set-abstraction block: sample, group, pool.

    ``forward`` maps ``(coords, features)`` with ``N`` rows to
    ``(coords', features')`` with ``num_centroids`` rows (fewer when the
    input is smaller than the centroid budget).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        num_centroids: int,
        neighbors: int,
        radius: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
        name: str = "sa",
    ) -> None:
        super().__init__()
        if in_channels < 1 or out_channels < 1:
            raise ValueError("channel counts must be positive")
        if num_centroids < 1:
            raise ValueError(f"num_centroids must be positive, got {num_centroids}")
        if neighbors < 1:
            raise ValueError(f"neighbors must be positive, got {neighbors}")
        if radius is not None and radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.num_centroids = num_centroids
        self.neighbors = neighbors
        self.radius = None if radius is None else float(radius)
        rng = rng or np.random.default_rng(0)
        fan_in = in_channels + 3
        self.weight = self.register_parameter(
            "weight",
            Parameter(
                kaiming_uniform(rng, (fan_in, out_channels), fan_in=fan_in),
                name=f"{name}.weight",
            ),
        )
        self.bias = self.register_parameter(
            "bias", Parameter(np.zeros(out_channels), name=f"{name}.bias")
        )

    def forward(self, state, **kwargs):
        coords, features = state
        mapping_cache = kwargs.get("mapping_cache")
        trace = kwargs.get("trace")
        ops = _mapping()
        points = ops.as_point_array(coords)
        if features.shape[0] != points.shape[0]:
            raise ValueError("coords and features must have matching rows")
        if features.shape[1] != self.in_channels:
            raise ValueError(
                f"expected {self.in_channels} feature channels, "
                f"got {features.shape[1]}"
            )

        if mapping_cache is not None:
            sampled = mapping_cache.farthest_point_sample(coords, self.num_centroids)
        else:
            sampled = ops.farthest_point_sample(coords, self.num_centroids)
        centroid_rows = sampled.indices[sampled.indices >= 0]
        centroids = coords[centroid_rows]
        if self.radius is None:
            if mapping_cache is not None:
                grouped = mapping_cache.knn(coords, self.neighbors, queries=centroids)
            else:
                grouped = ops.knn(coords, centroids, k=self.neighbors)
        else:
            if mapping_cache is not None:
                grouped = mapping_cache.ball_query(
                    coords, self.radius, self.neighbors, queries=centroids
                )
            else:
                grouped = ops.ball_query(
                    coords, centroids, radius=self.radius, max_samples=self.neighbors
                )
        gathered = ops.group_points(features, grouped.indices)
        if trace is not None:
            trace.extend([sampled, grouped, gathered])

        neighbor_idx = grouped.indices
        safe = np.where(neighbor_idx < 0, 0, neighbor_idx)
        relative = points[safe] - ops.as_point_array(centroids)[:, None, :]
        stacked = np.concatenate([relative, gathered.grouped], axis=2)
        hidden = np.maximum(
            stacked @ self.weight.value + self.bias.value, 0.0
        )
        # Masked max-pool: every centroid is its own neighbor (distance 0),
        # so each row keeps at least one valid entry.
        masked = np.where((neighbor_idx >= 0)[:, :, None], hidden, -np.inf)
        pooled = masked.max(axis=1)
        return centroids, pooled


class PointNetClassifier(Module):
    """Minimal PointNet++-style classifier over a sparse voxel tensor.

    Consumes a :class:`SparseTensor3D` (coordinates as the point set,
    features as per-point attributes) and produces ``(num_classes,)``
    logits; sessions route it through the mapping subsystem instead of
    the rulebook path (see ``uses_mapping_ops``).
    """

    uses_mapping_ops = True

    def __init__(self, config: Optional[PointNetConfig] = None) -> None:
        super().__init__()
        self.config = config or PointNetConfig()
        cfg = self.config
        if len(cfg.centroids) != len(cfg.widths) or not cfg.centroids:
            raise ValueError("centroids and widths must be equal-length, non-empty")
        if cfg.radii is not None and len(cfg.radii) != len(cfg.centroids):
            raise ValueError("radii must match the number of stages")
        rng = np.random.default_rng(cfg.seed)
        channel_plan = (cfg.in_channels,) + tuple(cfg.widths)
        self.blocks: List[SetAbstraction] = []
        for stage, num_centroids in enumerate(cfg.centroids):
            block = SetAbstraction(
                in_channels=channel_plan[stage],
                out_channels=channel_plan[stage + 1],
                num_centroids=num_centroids,
                neighbors=cfg.neighbors,
                radius=None if cfg.radii is None else cfg.radii[stage],
                rng=rng,
                name=f"sa{stage}",
            )
            self.blocks.append(self.register_child(f"sa{stage}", block))
        head_weight = kaiming_uniform(
            rng, (cfg.widths[-1], cfg.num_classes), fan_in=cfg.widths[-1]
        )
        self.head_weight = self.register_parameter(
            "head_weight", Parameter(head_weight, name="head.weight")
        )
        self.head_bias = self.register_parameter(
            "head_bias", Parameter(np.zeros(cfg.num_classes), name="head.bias")
        )

    def forward(self, tensor: SparseTensor3D, **kwargs) -> np.ndarray:
        """Class logits ``(num_classes,)`` for one point/voxel cloud."""
        coords = tensor.coords
        features = np.asarray(tensor.features, dtype=np.float64)
        if coords.shape[0] == 0:
            return np.array(self.head_bias.value, copy=True)
        state = (coords, features)
        for block in self.blocks:
            state = block(state, **kwargs)
        pooled = state[1].max(axis=0)
        return pooled @ self.head_weight.value + self.head_bias.value

    def predict(self, tensor: SparseTensor3D, **kwargs) -> int:
        """Argmax class for one cloud."""
        return int(np.argmax(self.forward(tensor, **kwargs)))
