"""Deterministic weight initialization.

The benchmarks do not depend on learned weight values (see DESIGN.md), but
sensible scales keep quantization realistic, so Kaiming-style fan-in
initialization is used everywhere with explicit seeds.
"""

from __future__ import annotations

import numpy as np


def kaiming_uniform(
    rng: np.random.Generator, shape: tuple, fan_in: int
) -> np.ndarray:
    """He/Kaiming uniform initialization: ``U(-b, b)``, ``b = sqrt(6/fan_in)``."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def conv_weight(
    rng: np.random.Generator, kernel_volume: int, in_channels: int, out_channels: int
) -> np.ndarray:
    """``(K^3, Cin, Cout)`` convolution weight with fan-in ``K^3 * Cin``."""
    return kaiming_uniform(
        rng, (kernel_volume, in_channels, out_channels), kernel_volume * in_channels
    )
