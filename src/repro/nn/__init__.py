"""Reference implementation of submanifold sparse convolutional networks.

This package is the *golden model* for the accelerator: a functional,
NumPy-based implementation of the submanifold sparse convolution
(Sub-Conv) of Graham et al. [12], strided sparse convolution and its
transpose (used by the U-Net encoder/decoder), plus the 3D submanifold
sparse U-Net (SS U-Net) benchmarked by the paper.

The *matching operation* the paper accelerates corresponds to
:func:`repro.nn.rulebook.build_submanifold_rulebook` here: for every
nonzero activation, find the nonzero neighbors under each kernel offset.
"""

from repro.nn.rulebook import (
    GatherScatterPlan,
    Rulebook,
    RulebookCache,
    build_sparse_conv_rulebook,
    build_submanifold_rulebook,
    kernel_offsets,
)
from repro.nn.functional import (
    ApplyStats,
    apply_rulebook,
    apply_rulebook_batch,
    apply_rulebook_reference,
    dense_conv3d_reference,
    global_avg_pool,
    global_max_pool,
    sparse_conv3d,
    sparse_inverse_conv3d,
    submanifold_conv3d,
)
from repro.nn.classifier import ClassifierConfig, SSCNClassifier
from repro.nn.layers import (
    BatchNormSparse,
    ReLUSparse,
    SparseConv3d,
    SparseInverseConv3d,
    SubmanifoldConv3d,
)
from repro.nn.network import Module, Parameter, Sequential
from repro.nn.point_layers import (
    PointNetClassifier,
    PointNetConfig,
    SetAbstraction,
)
from repro.nn.unet import (
    LayerExecution,
    SSUNet,
    UNetConfig,
    collect_all_executions,
    collect_subconv_workloads,
)

__all__ = [
    "Rulebook",
    "RulebookCache",
    "GatherScatterPlan",
    "ApplyStats",
    "apply_rulebook",
    "apply_rulebook_batch",
    "apply_rulebook_reference",
    "kernel_offsets",
    "build_submanifold_rulebook",
    "build_sparse_conv_rulebook",
    "submanifold_conv3d",
    "sparse_conv3d",
    "sparse_inverse_conv3d",
    "dense_conv3d_reference",
    "global_max_pool",
    "global_avg_pool",
    "ClassifierConfig",
    "SSCNClassifier",
    "Module",
    "Parameter",
    "Sequential",
    "SubmanifoldConv3d",
    "SparseConv3d",
    "SparseInverseConv3d",
    "BatchNormSparse",
    "ReLUSparse",
    "PointNetConfig",
    "PointNetClassifier",
    "SetAbstraction",
    "SSUNet",
    "UNetConfig",
    "LayerExecution",
    "collect_all_executions",
    "collect_subconv_workloads",
]
