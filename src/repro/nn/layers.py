"""Layer modules wrapping the functional sparse operators."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.init import conv_weight
from repro.nn.network import Module, Parameter
from repro.sparse.coo import SparseTensor3D
from repro.sparse.ops import relu as relu_op
from repro.sparse.ops import scale_features


class SubmanifoldConv3d(Module):
    """Submanifold sparse convolution layer (Sub-Conv, kernel ``K^3``).

    The workhorse layer of the SS U-Net and the operation the ESCA
    accelerator executes.  Output sites equal input sites.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        bias: bool = False,
        rng: Optional[np.random.Generator] = None,
        name: str = "subconv",
    ) -> None:
        super().__init__()
        if kernel_size % 2 == 0:
            raise ValueError("submanifold convolution requires odd kernel_size")
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.name = name
        rng = rng or np.random.default_rng(0)
        volume = self.kernel_size ** 3
        self.weight = self.register_parameter(
            "weight",
            Parameter(
                conv_weight(rng, volume, self.in_channels, self.out_channels),
                name=f"{name}.weight",
            ),
        )
        self.bias = (
            self.register_parameter(
                "bias",
                Parameter(np.zeros(self.out_channels), name=f"{name}.bias"),
            )
            if bias
            else None
        )

    def forward(self, tensor: SparseTensor3D, **kwargs) -> SparseTensor3D:
        record = kwargs.get("record")
        if record is not None:
            record.append(("subconv", self, tensor))
        return F.submanifold_conv3d(
            tensor,
            self.weight.value,
            bias=None if self.bias is None else self.bias.value,
            kernel_size=self.kernel_size,
            cache=self._resolve_rulebook_cache(kwargs),
            stats=kwargs.get("stats"),
        )


class SparseConv3d(Module):
    """Strided sparse convolution (U-Net downsampling)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 2,
        stride: int = 2,
        bias: bool = False,
        rng: Optional[np.random.Generator] = None,
        name: str = "sparseconv",
    ) -> None:
        super().__init__()
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.name = name
        rng = rng or np.random.default_rng(0)
        volume = self.kernel_size ** 3
        self.weight = self.register_parameter(
            "weight",
            Parameter(
                conv_weight(rng, volume, self.in_channels, self.out_channels),
                name=f"{name}.weight",
            ),
        )
        self.bias = (
            self.register_parameter(
                "bias",
                Parameter(np.zeros(self.out_channels), name=f"{name}.bias"),
            )
            if bias
            else None
        )

    def forward(self, tensor: SparseTensor3D, **kwargs) -> SparseTensor3D:
        record = kwargs.get("record")
        if record is not None:
            record.append(("sparseconv", self, tensor))
        return F.sparse_conv3d(
            tensor,
            self.weight.value,
            stride=self.stride,
            bias=None if self.bias is None else self.bias.value,
            kernel_size=self.kernel_size,
            cache=self._resolve_rulebook_cache(kwargs),
            stats=kwargs.get("stats"),
        )


class SparseInverseConv3d(Module):
    """Transposed strided sparse convolution (U-Net upsampling).

    The reference tensor (whose site set is restored) is passed at call
    time: ``layer(coarse, reference=fine)``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 2,
        stride: int = 2,
        bias: bool = False,
        rng: Optional[np.random.Generator] = None,
        name: str = "invconv",
    ) -> None:
        super().__init__()
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.name = name
        rng = rng or np.random.default_rng(0)
        volume = self.kernel_size ** 3
        self.weight = self.register_parameter(
            "weight",
            Parameter(
                conv_weight(rng, volume, self.in_channels, self.out_channels),
                name=f"{name}.weight",
            ),
        )
        self.bias = (
            self.register_parameter(
                "bias",
                Parameter(np.zeros(self.out_channels), name=f"{name}.bias"),
            )
            if bias
            else None
        )

    def forward(self, tensor: SparseTensor3D, **kwargs) -> SparseTensor3D:
        reference = kwargs.get("reference")
        if reference is None:
            raise ValueError("SparseInverseConv3d requires reference= at call time")
        record = kwargs.get("record")
        if record is not None:
            # The matching work of a transposed conv is driven by the
            # *reference* (fine) site set it restores, so that is what the
            # execution record carries.
            record.append(("invconv", self, reference))
        return F.sparse_inverse_conv3d(
            tensor,
            self.weight.value,
            reference=reference,
            stride=self.stride,
            bias=None if self.bias is None else self.bias.value,
            kernel_size=self.kernel_size,
            cache=self._resolve_rulebook_cache(kwargs),
            stats=kwargs.get("stats"),
        )


class BatchNormSparse(Module):
    """Inference-mode batch normalization folded to scale + bias."""

    def __init__(
        self,
        channels: int,
        rng: Optional[np.random.Generator] = None,
        name: str = "bn",
    ) -> None:
        super().__init__()
        self.channels = int(channels)
        self.name = name
        rng = rng or np.random.default_rng(0)
        # Inference statistics folded into affine parameters; jittered so
        # that quantization sees realistic non-unit scales.
        self.scale = self.register_parameter(
            "scale",
            Parameter(1.0 + 0.05 * rng.standard_normal(channels), name=f"{name}.scale"),
        )
        self.shift = self.register_parameter(
            "shift",
            Parameter(0.01 * rng.standard_normal(channels), name=f"{name}.shift"),
        )

    def forward(self, tensor: SparseTensor3D, **kwargs) -> SparseTensor3D:
        return scale_features(tensor, self.scale.value, self.shift.value)


class ReLUSparse(Module):
    """Elementwise ReLU (site set unchanged — submanifold property)."""

    def forward(self, tensor: SparseTensor3D, **kwargs) -> SparseTensor3D:
        return relu_op(tensor)
