"""A submanifold sparse CNN classifier (shape classification).

The paper evaluates on the SS U-Net (segmentation), but SSCNs [12] cover
classification as well; this model provides a second benchmark network:
a VGG-style stack of Sub-Conv blocks with strided downsampling, finished
by global pooling and a linear head.  Its Sub-Conv layers run on the
ESCA simulator exactly like the U-Net's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.nn.functional import global_avg_pool, global_max_pool
from repro.nn.layers import BatchNormSparse, ReLUSparse, SparseConv3d, SubmanifoldConv3d
from repro.nn.network import Module, Parameter, Sequential
from repro.nn.init import kaiming_uniform
from repro.sparse.coo import SparseTensor3D


@dataclass(frozen=True)
class ClassifierConfig:
    """Hyperparameters of the SSCN classifier."""

    in_channels: int = 1
    num_classes: int = 10
    base_channels: int = 16
    stages: int = 3
    kernel_size: int = 3
    pooling: str = "max"  # "max" or "avg"
    seed: int = 0

    def channel_plan(self) -> Tuple[int, ...]:
        return tuple(self.base_channels * (i + 1) for i in range(self.stages))


class SSCNClassifier(Module):
    """Sub-Conv stages with strided downsampling, pooled linear head."""

    def __init__(self, config: Optional[ClassifierConfig] = None) -> None:
        super().__init__()
        self.config = config or ClassifierConfig()
        cfg = self.config
        if cfg.stages < 1:
            raise ValueError(f"need at least one stage, got {cfg.stages}")
        if cfg.pooling not in ("max", "avg"):
            raise ValueError(f"pooling must be 'max' or 'avg', got {cfg.pooling!r}")
        rng = np.random.default_rng(cfg.seed)
        plan = cfg.channel_plan()

        self.stages: List[Sequential] = []
        in_ch = cfg.in_channels
        for stage, out_ch in enumerate(plan):
            block = Sequential(
                SubmanifoldConv3d(
                    in_ch, out_ch, kernel_size=cfg.kernel_size, rng=rng,
                    name=f"stage{stage}.conv",
                ),
                BatchNormSparse(out_ch, rng=rng, name=f"stage{stage}.bn"),
                ReLUSparse(),
            )
            self.stages.append(self.register_child(f"stage{stage}", block))
            if stage != cfg.stages - 1:
                down = SparseConv3d(out_ch, out_ch, rng=rng, name=f"pool{stage}")
                self.register_child(f"pool{stage}", down)
            in_ch = out_ch

        head_weight = kaiming_uniform(
            rng, (plan[-1], cfg.num_classes), fan_in=plan[-1]
        )
        self.head_weight = self.register_parameter(
            "head_weight", Parameter(head_weight, name="head.weight")
        )
        self.head_bias = self.register_parameter(
            "head_bias", Parameter(np.zeros(cfg.num_classes), name="head.bias")
        )

    def forward(self, tensor: SparseTensor3D, **kwargs) -> np.ndarray:
        """Class logits ``(num_classes,)`` for one voxelized object."""
        cfg = self.config
        record = kwargs.get("record")
        current = tensor
        for stage in range(cfg.stages):
            current = self.stages[stage](current, record=record)
            if stage != cfg.stages - 1:
                down = self._children[f"pool{stage}"]
                current = down(current, record=record)
        pooled = (
            global_max_pool(current)
            if cfg.pooling == "max"
            else global_avg_pool(current)
        )
        return pooled @ self.head_weight.value + self.head_bias.value

    def predict(self, tensor: SparseTensor3D) -> int:
        """Argmax class for one object."""
        return int(np.argmax(self.forward(tensor)))
