"""Functional sparse convolution operations (gather-GEMM-scatter).

These are the mathematical definitions the accelerator must reproduce;
they follow Graham et al. [12].  ``dense_conv3d_reference`` implements the
*traditional* convolution of Fig. 2(a) and is used both to validate the
submanifold operator (restricted to active sites the two agree) and to
demonstrate sparsity dilation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.rulebook import (
    Rulebook,
    build_sparse_conv_rulebook,
    build_submanifold_rulebook,
    kernel_offsets,
)
from repro.sparse.coo import SparseTensor3D


def normalize_weights(weights: np.ndarray, kernel_size: int) -> np.ndarray:
    """Accept ``(K, K, K, Cin, Cout)`` or ``(K^3, Cin, Cout)`` weights."""
    weights = np.asarray(weights)
    volume = kernel_size ** 3
    if weights.ndim == 5:
        if weights.shape[:3] != (kernel_size,) * 3:
            raise ValueError(
                f"weights spatial shape {weights.shape[:3]} != kernel {kernel_size}"
            )
        weights = weights.reshape(volume, weights.shape[3], weights.shape[4])
    if weights.ndim != 3 or weights.shape[0] != volume:
        raise ValueError(
            f"weights must be (K^3, Cin, Cout) with K={kernel_size}, "
            f"got {weights.shape}"
        )
    return weights


def apply_rulebook(
    rulebook: Rulebook,
    in_features: np.ndarray,
    weights: np.ndarray,
    num_outputs: int,
) -> np.ndarray:
    """Gather-GEMM-scatter evaluation of a rulebook.

    ``out[o] = sum_k W[k] @ in[i]`` over all rules ``(i, o)`` of offset
    ``k``; this is the dense linear-algebra equivalent of streaming the
    match groups through the computing core.
    """
    out_channels = weights.shape[2]
    out = np.zeros((num_outputs, out_channels), dtype=np.float64)
    for k, rule in enumerate(rulebook.rules):
        if len(rule) == 0:
            continue
        gathered = in_features[rule[:, 0]]
        contribution = gathered @ weights[k]
        np.add.at(out, rule[:, 1], contribution)
    return out


def submanifold_conv3d(
    tensor: SparseTensor3D,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    kernel_size: int = 3,
    rulebook: Optional[Rulebook] = None,
) -> SparseTensor3D:
    """Submanifold sparse convolution (Sub-Conv).

    Output sites are exactly the input sites; each output is the sum of
    ``W[d] @ in[p + d]`` over offsets ``d`` whose neighbor ``p + d`` is
    active.  A precomputed ``rulebook`` may be supplied to amortize the
    matching cost across layers operating on the same site set.
    """
    weights = normalize_weights(weights, kernel_size)
    if weights.shape[1] != tensor.num_channels:
        raise ValueError(
            f"weights expect {weights.shape[1]} input channels, tensor has "
            f"{tensor.num_channels}"
        )
    if rulebook is None:
        rulebook = build_submanifold_rulebook(tensor, kernel_size)
    out = apply_rulebook(rulebook, tensor.features, weights, tensor.nnz)
    if bias is not None:
        out = out + np.asarray(bias).reshape(1, -1)
    return tensor.with_features(out)


def sparse_conv3d(
    tensor: SparseTensor3D,
    weights: np.ndarray,
    stride: int = 2,
    bias: Optional[np.ndarray] = None,
    kernel_size: int = 2,
) -> SparseTensor3D:
    """Strided sparse convolution (the U-Net downsampling operator).

    Unlike Sub-Conv, the output site set is the stride-decimated union of
    input receptive fields, so sparsity *coarsens* (but does not dilate
    within a scale).
    """
    weights = normalize_weights(weights, kernel_size)
    if weights.shape[1] != tensor.num_channels:
        raise ValueError(
            f"weights expect {weights.shape[1]} input channels, tensor has "
            f"{tensor.num_channels}"
        )
    rulebook, out_coords = build_sparse_conv_rulebook(tensor, kernel_size, stride)
    out = apply_rulebook(rulebook, tensor.features, weights, len(out_coords))
    if bias is not None:
        out = out + np.asarray(bias).reshape(1, -1)
    out_shape = tuple(max(1, -(-s // stride)) for s in tensor.shape)
    return SparseTensor3D(out_coords, out, out_shape)


def sparse_inverse_conv3d(
    tensor: SparseTensor3D,
    weights: np.ndarray,
    reference: SparseTensor3D,
    stride: int = 2,
    bias: Optional[np.ndarray] = None,
    kernel_size: int = 2,
) -> SparseTensor3D:
    """Transposed strided sparse convolution (the U-Net upsampling operator).

    Restores exactly the site set of ``reference`` (the tensor that was
    downsampled on the encoder side), reversing the rulebook of the
    corresponding forward convolution: ``out[p] += W[d].T-role @ in[q]``
    for every forward rule ``p -> q`` under offset ``d``.
    """
    weights = normalize_weights(weights, kernel_size)
    if weights.shape[1] != tensor.num_channels:
        raise ValueError(
            f"weights expect {weights.shape[1]} input channels, tensor has "
            f"{tensor.num_channels}"
        )
    forward_rb, down_coords = build_sparse_conv_rulebook(
        reference, kernel_size, stride
    )
    # The coarse tensor must live on the downsample of `reference`.
    if len(down_coords) != tensor.nnz or not np.array_equal(
        down_coords, tensor.coords
    ):
        raise ValueError(
            "input tensor sites do not match the downsampled reference sites"
        )
    out = np.zeros((reference.nnz, weights.shape[2]), dtype=np.float64)
    for k, rule in enumerate(forward_rb.rules):
        if len(rule) == 0:
            continue
        fine_rows = rule[:, 0]
        coarse_rows = rule[:, 1]
        contribution = tensor.features[coarse_rows] @ weights[k]
        np.add.at(out, fine_rows, contribution)
    if bias is not None:
        out = out + np.asarray(bias).reshape(1, -1)
    return SparseTensor3D(reference.coords.copy(), out, reference.shape)


def global_max_pool(tensor: SparseTensor3D) -> np.ndarray:
    """Global max pooling over active sites: ``(C,)`` feature vector.

    Classification-style readout over a sparse tensor.  Raises on an
    empty tensor (there is no sensible identity for max over features).
    """
    if tensor.nnz == 0:
        raise ValueError("global_max_pool of an empty tensor")
    return tensor.features.max(axis=0)


def global_avg_pool(tensor: SparseTensor3D) -> np.ndarray:
    """Global average pooling over active sites: ``(C,)`` feature vector."""
    if tensor.nnz == 0:
        raise ValueError("global_avg_pool of an empty tensor")
    return tensor.features.mean(axis=0)


def dense_conv3d_reference(
    dense: np.ndarray,
    weights: np.ndarray,
    kernel_size: int = 3,
    bias: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Traditional 'same'-padded dense 3D convolution (Fig. 2(a)).

    ``dense`` is ``(X, Y, Z, Cin)``; returns ``(X, Y, Z, Cout)``.  The
    kernel is centered, matching :func:`submanifold_conv3d`'s convention,
    so at any active site the two operators agree whenever the site's
    whole neighborhood is interior.
    """
    weights = normalize_weights(weights, kernel_size)
    dense = np.asarray(dense, dtype=np.float64)
    if dense.ndim != 4:
        raise ValueError(f"dense input must be (X, Y, Z, C), got {dense.shape}")
    x_dim, y_dim, z_dim, in_ch = dense.shape
    if in_ch != weights.shape[1]:
        raise ValueError(
            f"weights expect {weights.shape[1]} input channels, input has {in_ch}"
        )
    out = np.zeros((x_dim, y_dim, z_dim, weights.shape[2]), dtype=np.float64)
    offsets = kernel_offsets(kernel_size, center=True)
    for k, (dx, dy, dz) in enumerate(offsets):
        # out[p] += in[p + d] @ W[k], implemented as array slicing.
        src_x = slice(max(0, dx), x_dim + min(0, dx))
        src_y = slice(max(0, dy), y_dim + min(0, dy))
        src_z = slice(max(0, dz), z_dim + min(0, dz))
        dst_x = slice(max(0, -dx), x_dim + min(0, -dx))
        dst_y = slice(max(0, -dy), y_dim + min(0, -dy))
        dst_z = slice(max(0, -dz), z_dim + min(0, -dz))
        out[dst_x, dst_y, dst_z] += dense[src_x, src_y, src_z] @ weights[k]
    if bias is not None:
        out = out + np.asarray(bias).reshape(1, 1, 1, -1)
    return out
