"""Functional sparse convolution operations (gather-GEMM-scatter).

These are the mathematical definitions the accelerator must reproduce;
they follow Graham et al. [12].  ``dense_conv3d_reference`` implements the
*traditional* convolution of Fig. 2(a) and is used both to validate the
submanifold operator (restricted to active sites the two agree) and to
demonstrate sparsity dilation.

The hot path is :func:`apply_rulebook`, a *fused* vectorized evaluation:
one concatenated gather over all kernel offsets, one contiguous block
GEMM per offset, and a scatter that exploits per-offset output-row
uniqueness to avoid the (orders-of-magnitude slower) buffered
:func:`np.add.at` reduction.  The original scalar-scatter formulation is
kept as :func:`apply_rulebook_reference` — it remains the correctness
oracle and the baseline the engine benchmark measures against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.nn.rulebook import (
    Rulebook,
    RulebookCache,
    get_sparse_conv_rulebook,
    get_submanifold_rulebook,
    kernel_offsets,
)
from repro.sparse.coo import SparseTensor3D


def normalize_weights(weights: np.ndarray, kernel_size: int) -> np.ndarray:
    """Accept ``(K, K, K, Cin, Cout)`` or ``(K^3, Cin, Cout)`` weights."""
    weights = np.asarray(weights)
    volume = kernel_size ** 3
    if weights.ndim == 5:
        if weights.shape[:3] != (kernel_size,) * 3:
            raise ValueError(
                f"weights spatial shape {weights.shape[:3]} != kernel {kernel_size}"
            )
        weights = weights.reshape(volume, weights.shape[3], weights.shape[4])
    if weights.ndim != 3 or weights.shape[0] != volume:
        raise ValueError(
            f"weights must be (K^3, Cin, Cout) with K={kernel_size}, "
            f"got {weights.shape}"
        )
    return weights


def _accumulator_dtype(in_features: np.ndarray, weights: np.ndarray) -> np.dtype:
    """Accumulator dtype contract shared by the fused and batched engines.

    The promoted dtype of features and weights, widened to at least
    ``int64`` for integers (the software analogue of the hardware's wide
    accumulator): per-match products of narrow formats like INT16 x INT8
    fit their own dtype, but the cross-offset sum must not wrap.
    """
    dtype = np.result_type(in_features.dtype, weights.dtype)
    if dtype.kind in "iu":
        dtype = np.result_type(dtype, np.int64)
    return dtype


def _validate_stride(stride: int) -> int:
    """Strides must be integers >= 1 (0 would divide by zero downstream)."""
    if int(stride) != stride:
        raise ValueError(f"stride must be an integer, got {stride!r}")
    stride = int(stride)
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    return stride


@dataclass
class ApplyStats:
    """Wall-clock breakdown of one :func:`apply_rulebook` evaluation."""

    matches: int = 0
    gather_seconds: float = 0.0
    gemm_seconds: float = 0.0
    scatter_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.gather_seconds + self.gemm_seconds + self.scatter_seconds


def apply_rulebook(
    rulebook: Rulebook,
    in_features: np.ndarray,
    weights: np.ndarray,
    num_outputs: int,
    stats: Optional[ApplyStats] = None,
) -> np.ndarray:
    """Fused gather-GEMM-scatter evaluation of a rulebook.

    ``out[o] = sum_k W[k] @ in[i]`` over all rules ``(i, o)`` of offset
    ``k`` — the dense linear-algebra equivalent of streaming the match
    groups through the computing core.  Three fused stages:

    1. **gather** — one concatenated ``in_features[plan.in_rows]`` copy
       covering every offset (offset-major order);
    2. **GEMM** — one matmul per offset on the *contiguous* gathered
       segment, written into a preallocated contribution buffer;
    3. **scatter** — per-offset ``out[rows] += contribution``; exact
       (not merely approximate) because within an offset each output row
       occurs at most once, and bit-identical to the sequential
       :func:`np.add.at` reference since offsets are visited in the same
       order.

    The accumulator uses the promoted dtype of ``in_features`` and
    ``weights`` (``np.result_type``), so quantized integer features stay
    integer and ``float32`` pipelines are not silently upcast to
    ``float64``.  Integer accumulation is widened to at least ``int64``
    (the software analogue of the hardware's wide accumulator): per-match
    products of narrow formats like INT16 x INT8 fit their own dtype, but
    the cross-offset sum must not wrap.  When ``stats`` is supplied,
    per-stage wall-clock seconds and the match count are accumulated into
    it.
    """
    in_features = np.asarray(in_features)
    weights = np.asarray(weights)
    out_channels = weights.shape[2]
    dtype = _accumulator_dtype(in_features, weights)
    out = np.zeros((num_outputs, out_channels), dtype=dtype)
    plan = rulebook.plan()
    if plan.total_matches == 0:
        return out

    t0 = time.perf_counter()
    gathered = in_features[plan.in_rows]
    t1 = time.perf_counter()
    contribution = np.empty((plan.total_matches, out_channels), dtype=dtype)
    starts = plan.segment_starts
    weights = weights.astype(dtype, copy=False)
    gathered = gathered.astype(dtype, copy=False)
    for k in plan.active_offsets:
        # np.dot into the preallocated contiguous slice; measurably less
        # dispatch overhead than np.matmul for thin channel counts.
        np.dot(
            gathered[starts[k]:starts[k + 1]],
            weights[k],
            out=contribution[starts[k]:starts[k + 1]],
        )
    t2 = time.perf_counter()
    for k in plan.active_offsets:
        out[plan.out_rows[k]] += contribution[starts[k]:starts[k + 1]]
    t3 = time.perf_counter()

    if stats is not None:
        stats.matches += plan.total_matches
        stats.gather_seconds += t1 - t0
        stats.gemm_seconds += t2 - t1
        stats.scatter_seconds += t3 - t2
    return out


def apply_rulebook_batch(
    rulebook: Rulebook,
    in_features: np.ndarray,
    weights: np.ndarray,
    num_outputs: int,
    stats: Optional[ApplyStats] = None,
) -> np.ndarray:
    """Batched gather-GEMM-scatter: ``(B, N, Cin)`` features, shared weights.

    Multi-frame execution over one cached rulebook: every frame of the
    batch shares the site set (and therefore the matching result), so the
    gather and scatter stages are vectorized across the whole batch while
    the per-offset GEMM runs each frame on exactly the same contiguous
    ``(n_k, Cin) @ (Cin, Cout)`` block as :func:`apply_rulebook` does for
    a single frame.  The output is therefore **bit-identical** to calling
    :func:`apply_rulebook` once per frame — the structural guarantee
    :meth:`repro.engine.session.InferenceSession.run_batch` is built on.
    """
    in_features = np.asarray(in_features)
    if in_features.ndim != 3:
        raise ValueError(
            f"batched features must be (B, N, Cin), got {in_features.shape}"
        )
    weights = np.asarray(weights)
    batch = in_features.shape[0]
    out_channels = weights.shape[2]
    dtype = _accumulator_dtype(in_features, weights)
    out = np.zeros((batch, num_outputs, out_channels), dtype=dtype)
    plan = rulebook.plan()
    if plan.total_matches == 0 or batch == 0:
        return out

    t0 = time.perf_counter()
    gathered = in_features[:, plan.in_rows, :]
    t1 = time.perf_counter()
    contribution = np.empty(
        (batch, plan.total_matches, out_channels), dtype=dtype
    )
    starts = plan.segment_starts
    weights = weights.astype(dtype, copy=False)
    gathered = gathered.astype(dtype, copy=False)
    for k in plan.active_offsets:
        for b in range(batch):
            # Same contiguous per-offset block GEMM as the single-frame
            # path, so each frame's arithmetic is identical bit for bit.
            np.dot(
                gathered[b, starts[k]:starts[k + 1]],
                weights[k],
                out=contribution[b, starts[k]:starts[k + 1]],
            )
    t2 = time.perf_counter()
    for k in plan.active_offsets:
        out[:, plan.out_rows[k]] += contribution[:, starts[k]:starts[k + 1]]
    t3 = time.perf_counter()

    if stats is not None:
        stats.matches += batch * plan.total_matches
        stats.gather_seconds += t1 - t0
        stats.gemm_seconds += t2 - t1
        stats.scatter_seconds += t3 - t2
    return out


def apply_rulebook_reference(
    rulebook: Rulebook,
    in_features: np.ndarray,
    weights: np.ndarray,
    num_outputs: int,
) -> np.ndarray:
    """The original per-offset ``np.add.at`` evaluation (seed behavior).

    Kept as the correctness oracle for :func:`apply_rulebook` and as the
    baseline of the engine benchmark.  Note the float64 accumulator: this
    is the seed's exact semantics, including its silent upcast.
    """
    out_channels = weights.shape[2]
    out = np.zeros((num_outputs, out_channels), dtype=np.float64)
    for k, rule in enumerate(rulebook.rules):
        if len(rule) == 0:
            continue
        gathered = in_features[rule[:, 0]]
        contribution = gathered @ weights[k]
        np.add.at(out, rule[:, 1], contribution)
    return out


def submanifold_conv3d(
    tensor: SparseTensor3D,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    kernel_size: int = 3,
    rulebook: Optional[Rulebook] = None,
    cache: Optional[RulebookCache] = None,
    stats: Optional[ApplyStats] = None,
) -> SparseTensor3D:
    """Submanifold sparse convolution (Sub-Conv).

    Output sites are exactly the input sites; each output is the sum of
    ``W[d] @ in[p + d]`` over offsets ``d`` whose neighbor ``p + d`` is
    active.  A precomputed ``rulebook`` may be supplied, or a ``cache``
    that amortizes the matching cost across every layer (and frame)
    operating on the same site set.
    """
    weights = normalize_weights(weights, kernel_size)
    if weights.shape[1] != tensor.num_channels:
        raise ValueError(
            f"weights expect {weights.shape[1]} input channels, tensor has "
            f"{tensor.num_channels}"
        )
    if rulebook is None:
        rulebook = get_submanifold_rulebook(tensor, kernel_size, cache=cache)
    out = apply_rulebook(rulebook, tensor.features, weights, tensor.nnz, stats=stats)
    if bias is not None:
        out = out + np.asarray(bias).reshape(1, -1)
    return tensor.with_features(out)


def sparse_conv3d(
    tensor: SparseTensor3D,
    weights: np.ndarray,
    stride: int = 2,
    bias: Optional[np.ndarray] = None,
    kernel_size: int = 2,
    cache: Optional[RulebookCache] = None,
    stats: Optional[ApplyStats] = None,
) -> SparseTensor3D:
    """Strided sparse convolution (the U-Net downsampling operator).

    Unlike Sub-Conv, the output site set is the stride-decimated union of
    input receptive fields, so sparsity *coarsens* (but does not dilate
    within a scale).
    """
    stride = _validate_stride(stride)
    weights = normalize_weights(weights, kernel_size)
    if weights.shape[1] != tensor.num_channels:
        raise ValueError(
            f"weights expect {weights.shape[1]} input channels, tensor has "
            f"{tensor.num_channels}"
        )
    rulebook, out_coords = get_sparse_conv_rulebook(
        tensor, kernel_size, stride, cache=cache
    )
    out = apply_rulebook(
        rulebook, tensor.features, weights, len(out_coords), stats=stats
    )
    if bias is not None:
        out = out + np.asarray(bias).reshape(1, -1)
    out_shape = tuple(max(1, -(-s // stride)) for s in tensor.shape)
    return SparseTensor3D(out_coords, out, out_shape)


def sparse_inverse_conv3d(
    tensor: SparseTensor3D,
    weights: np.ndarray,
    reference: SparseTensor3D,
    stride: int = 2,
    bias: Optional[np.ndarray] = None,
    kernel_size: int = 2,
    cache: Optional[RulebookCache] = None,
    stats: Optional[ApplyStats] = None,
) -> SparseTensor3D:
    """Transposed strided sparse convolution (the U-Net upsampling operator).

    Restores exactly the site set of ``reference`` (the tensor that was
    downsampled on the encoder side), reversing the rulebook of the
    corresponding forward convolution: ``out[p] += W[d].T-role @ in[q]``
    for every forward rule ``p -> q`` under offset ``d``.  With a
    ``cache``, the forward rulebook built by the encoder's downsampling
    convolution is reused here instead of being rebuilt.
    """
    stride = _validate_stride(stride)
    weights = normalize_weights(weights, kernel_size)
    if weights.shape[1] != tensor.num_channels:
        raise ValueError(
            f"weights expect {weights.shape[1]} input channels, tensor has "
            f"{tensor.num_channels}"
        )
    forward_rb, down_coords = get_sparse_conv_rulebook(
        reference, kernel_size, stride, cache=cache
    )
    # The coarse tensor must live on the downsample of `reference`.
    if len(down_coords) != tensor.nnz or not np.array_equal(
        down_coords, tensor.coords
    ):
        raise ValueError(
            "input tensor sites do not match the downsampled reference sites"
        )
    out = apply_rulebook(
        forward_rb.transposed(),
        tensor.features,
        weights,
        reference.nnz,
        stats=stats,
    )
    if bias is not None:
        out = out + np.asarray(bias).reshape(1, -1)
    return SparseTensor3D(reference.coords.copy(), out, reference.shape)


def global_max_pool(tensor: SparseTensor3D) -> np.ndarray:
    """Global max pooling over active sites: ``(C,)`` feature vector.

    Classification-style readout over a sparse tensor.  Raises on an
    empty tensor (there is no sensible identity for max over features).
    """
    if tensor.nnz == 0:
        raise ValueError("global_max_pool of an empty tensor")
    return tensor.features.max(axis=0)


def global_avg_pool(tensor: SparseTensor3D) -> np.ndarray:
    """Global average pooling over active sites: ``(C,)`` feature vector."""
    if tensor.nnz == 0:
        raise ValueError("global_avg_pool of an empty tensor")
    return tensor.features.mean(axis=0)


def dense_conv3d_reference(
    dense: np.ndarray,
    weights: np.ndarray,
    kernel_size: int = 3,
    bias: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Traditional 'same'-padded dense 3D convolution (Fig. 2(a)).

    ``dense`` is ``(X, Y, Z, Cin)``; returns ``(X, Y, Z, Cout)``.  The
    kernel is centered, matching :func:`submanifold_conv3d`'s convention,
    so at any active site the two operators agree whenever the site's
    whole neighborhood is interior.
    """
    weights = normalize_weights(weights, kernel_size)
    dense = np.asarray(dense, dtype=np.float64)
    if dense.ndim != 4:
        raise ValueError(f"dense input must be (X, Y, Z, C), got {dense.shape}")
    x_dim, y_dim, z_dim, in_ch = dense.shape
    if in_ch != weights.shape[1]:
        raise ValueError(
            f"weights expect {weights.shape[1]} input channels, input has {in_ch}"
        )
    out = np.zeros((x_dim, y_dim, z_dim, weights.shape[2]), dtype=np.float64)
    offsets = kernel_offsets(kernel_size, center=True)
    for k, (dx, dy, dz) in enumerate(offsets):
        # out[p] += in[p + d] @ W[k], implemented as array slicing.
        src_x = slice(max(0, dx), x_dim + min(0, dx))
        src_y = slice(max(0, dy), y_dim + min(0, dy))
        src_z = slice(max(0, dz), z_dim + min(0, dz))
        dst_x = slice(max(0, -dx), x_dim + min(0, -dx))
        dst_y = slice(max(0, -dy), y_dim + min(0, -dy))
        dst_z = slice(max(0, -dz), z_dim + min(0, -dz))
        out[dst_x, dst_y, dst_z] += dense[src_x, src_y, src_z] @ weights[k]
    if bias is not None:
        out = out + np.asarray(bias).reshape(1, 1, 1, -1)
    return out
