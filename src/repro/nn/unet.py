"""The 3D submanifold sparse U-Net (SS U-Net) of Graham et al. [12].

This is the benchmark network of the paper (Sec. IV-A): an encoder/decoder
U-Net whose intra-level convolutions are all submanifold (kernel ``3^3``),
with strided sparse convolutions for downsampling, transposed sparse
convolutions for upsampling, and skip concatenations.

Besides the forward pass, the module exposes
:func:`collect_subconv_workloads`, which records every Sub-Conv execution
(site set, channel widths) so the accelerator benchmarks can replay the
exact per-layer workloads of the network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.nn.layers import (
    BatchNormSparse,
    ReLUSparse,
    SparseConv3d,
    SparseInverseConv3d,
    SubmanifoldConv3d,
)
from repro.nn.network import Module, Sequential
from repro.nn.rulebook import RulebookCache
from repro.sparse.coo import SparseTensor3D
from repro.sparse.ops import concat_features


@dataclass(frozen=True)
class UNetConfig:
    """Architecture hyperparameters of the SS U-Net.

    Defaults follow the SparseConvNet semantic-segmentation configuration
    scaled for the paper's single-FPGA deployment: channel widths grow
    linearly per level (``base_channels * level``), one Sub-Conv block
    repetition per level.
    """

    in_channels: int = 1
    num_classes: int = 16
    base_channels: int = 16
    levels: int = 4
    reps: int = 1
    kernel_size: int = 3
    seed: int = 0

    def channel_plan(self) -> Tuple[int, ...]:
        """Channel width per level, e.g. ``(16, 32, 48, 64)``."""
        return tuple(self.base_channels * (i + 1) for i in range(self.levels))


@dataclass
class LayerExecution:
    """One recorded convolution execution during a forward pass.

    ``kind`` is ``"subconv"`` (submanifold), ``"sparseconv"`` (strided
    downsampling) or ``"invconv"`` (transposed upsampling).
    """

    name: str
    input_tensor: SparseTensor3D
    in_channels: int
    out_channels: int
    kernel_size: int
    kind: str = "subconv"
    stride: int = 1

    @property
    def nnz(self) -> int:
        return self.input_tensor.nnz


def _conv_block(
    in_channels: int,
    out_channels: int,
    reps: int,
    kernel_size: int,
    rng: np.random.Generator,
    name: str,
) -> Sequential:
    """``reps`` repetitions of Sub-Conv -> BN -> ReLU."""
    block = Sequential()
    channels = in_channels
    for rep in range(reps):
        block.append(
            SubmanifoldConv3d(
                channels,
                out_channels,
                kernel_size=kernel_size,
                rng=rng,
                name=f"{name}.conv{rep}",
            )
        )
        block.append(BatchNormSparse(out_channels, rng=rng, name=f"{name}.bn{rep}"))
        block.append(ReLUSparse())
        channels = out_channels
    return block


class SSUNet(Module):
    """Submanifold sparse U-Net for point-cloud semantic segmentation.

    Pass ``rulebook_cache`` to share one matching pass across every
    convolution operating on the same site set: all Sub-Conv layers of a
    U-Net scale hit the cache after the first, and each decoder's
    transposed convolution reuses the rulebook its encoder downsampling
    built.  The preferred front door is
    :class:`repro.engine.session.InferenceSession`, which owns the cache
    (plus cross-scale plans, batching, and estimation) on the network's
    behalf.
    """

    def __init__(
        self,
        config: Optional[UNetConfig] = None,
        rulebook_cache: Optional[RulebookCache] = None,
    ) -> None:
        super().__init__()
        self.config = config or UNetConfig()
        cfg = self.config
        if cfg.levels < 2:
            raise ValueError(f"SS U-Net needs at least 2 levels, got {cfg.levels}")
        rng = np.random.default_rng(cfg.seed)
        plan = cfg.channel_plan()

        self.encoders: List[Sequential] = []
        self.downs: List[SparseConv3d] = []
        self.ups: List[SparseInverseConv3d] = []
        self.decoders: List[Sequential] = []

        in_ch = cfg.in_channels
        for level in range(cfg.levels - 1):
            encoder = _conv_block(
                in_ch, plan[level], cfg.reps, cfg.kernel_size, rng, f"enc{level}"
            )
            self.encoders.append(self.register_child(f"enc{level}", encoder))
            down = SparseConv3d(
                plan[level], plan[level + 1], rng=rng, name=f"down{level}"
            )
            self.downs.append(self.register_child(f"down{level}", down))
            in_ch = plan[level + 1]

        self.bottom = self.register_child(
            "bottom",
            _conv_block(
                plan[-1], plan[-1], cfg.reps, cfg.kernel_size, rng, "bottom"
            ),
        )

        for level in reversed(range(cfg.levels - 1)):
            up = SparseInverseConv3d(
                plan[level + 1], plan[level], rng=rng, name=f"up{level}"
            )
            self.ups.insert(0, self.register_child(f"up{level}", up))
            decoder = _conv_block(
                2 * plan[level], plan[level], cfg.reps, cfg.kernel_size, rng,
                f"dec{level}",
            )
            self.decoders.insert(0, self.register_child(f"dec{level}", decoder))

        # Per-site linear classifier, expressed as a 1^3 Sub-Conv.
        self.head = self.register_child(
            "head",
            SubmanifoldConv3d(
                plan[0], cfg.num_classes, kernel_size=1, rng=rng, name="head"
            ),
        )

        if rulebook_cache is not None:
            self._set_rulebook_cache(rulebook_cache)

    def forward(self, tensor: SparseTensor3D, **kwargs) -> SparseTensor3D:
        """Forward pass.

        Pass ``record=[]`` to capture convolution executions, ``cache=``
        to use a rulebook cache for this call only, and ``stats=`` (an
        :class:`repro.nn.functional.ApplyStats`) to accumulate the fused
        engine's gather/GEMM/scatter timings.
        """
        cfg = self.config
        skips: List[SparseTensor3D] = []
        current = tensor
        for level in range(cfg.levels - 1):
            current = self.encoders[level](current, **kwargs)
            skips.append(current)
            current = self.downs[level](current, **kwargs)
        current = self.bottom(current, **kwargs)
        for level in reversed(range(cfg.levels - 1)):
            current = self.ups[level](
                current, reference=skips[level], **kwargs
            )
            current = concat_features(skips[level], current)
            current = self.decoders[level](current, **kwargs)
        return self.head(current, **kwargs)


def collect_all_executions(
    net: SSUNet, tensor: SparseTensor3D, cache: Optional[RulebookCache] = None
) -> List[LayerExecution]:
    """Run ``net`` on ``tensor`` recording *every* convolution execution.

    Includes the strided downsampling and transposed upsampling layers,
    which the paper's accelerator leaves to the host side; the
    end-to-end system model (:mod:`repro.arch.host`) consumes these.
    Pass a session-owned ``cache`` so the recording forward reuses the
    session's rulebooks instead of rebuilding them.
    """
    raw: list = []
    if cache is not None:
        net(tensor, record=raw, cache=cache)
    else:
        net(tensor, record=raw)
    executions: List[LayerExecution] = []
    for kind, layer, input_tensor in raw:
        executions.append(
            LayerExecution(
                name=layer.name,
                input_tensor=input_tensor,
                in_channels=layer.in_channels,
                out_channels=layer.out_channels,
                kernel_size=layer.kernel_size,
                kind=kind,
                stride=getattr(layer, "stride", 1),
            )
        )
    return executions


def collect_subconv_workloads(
    net: SSUNet, tensor: SparseTensor3D
) -> List[LayerExecution]:
    """Run ``net`` on ``tensor`` recording every Sub-Conv execution.

    The returned workloads drive the accelerator and baseline models in
    the Table III / Fig. 10 experiments, ensuring all platforms execute
    the identical effective workload.
    """
    return [
        execution
        for execution in collect_all_executions(net, tensor)
        if execution.kind == "subconv"
    ]
