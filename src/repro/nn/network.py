"""Minimal module system for composing sparse layers."""

from __future__ import annotations

import warnings
from typing import Dict, Iterator, List, Tuple

import numpy as np


class Parameter:
    """A named learnable array."""

    def __init__(self, value: np.ndarray, name: str = "param") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.name = name

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(self.value.shape)

    def numel(self) -> int:
        return int(self.value.size)

    def __repr__(self) -> str:
        return f"Parameter({self.name}, shape={self.shape})"


class Module:
    """Base class for layers; subclasses implement :meth:`forward`.

    A module tree can carry a shared rulebook cache
    (:class:`repro.nn.rulebook.RulebookCache`): convolution layers
    resolve it at call time (an explicit ``cache=`` call kwarg takes
    precedence over the attached one).  Attaching via
    :meth:`use_rulebook_cache` is deprecated — the supported owner of
    the cache is :class:`repro.engine.session.InferenceSession`, which
    threads it through every consumer (forward, estimate, host model,
    compiler) rather than just the module tree.
    """

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._children: Dict[str, "Module"] = {}
        self._rulebook_cache = None

    def register_parameter(self, name: str, param: Parameter) -> Parameter:
        self._parameters[name] = param
        return param

    def register_child(self, name: str, module: "Module") -> "Module":
        self._children[name] = module
        if self._rulebook_cache is not None:
            module._set_rulebook_cache(self._rulebook_cache)
        return module

    def _set_rulebook_cache(self, cache) -> "Module":
        """Attach ``cache`` to this module and all its children."""
        self._rulebook_cache = cache
        for child in self._children.values():
            child._set_rulebook_cache(cache)
        return self

    def use_rulebook_cache(self, cache) -> "Module":
        """Attach ``cache`` to this module and all its children.

        .. deprecated::
            Threading a rulebook cache through the module tree is
            superseded by session ownership — construct an
            :class:`repro.engine.session.InferenceSession` and let it
            own the cache (``session.run`` resolves rulebooks for every
            layer).  This method remains for standalone module use.

        Children registered later inherit the cache automatically.  Pass
        ``None`` to detach.  Returns ``self`` for chaining.
        """
        warnings.warn(
            "Module.use_rulebook_cache is deprecated; construct a "
            "repro.engine.InferenceSession, which owns the rulebook cache "
            "and the execution backend (select engines with "
            "InferenceSession(backend=...) instead of attaching state to "
            "the module tree)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._set_rulebook_cache(cache)

    @property
    def rulebook_cache(self):
        """The attached rulebook cache, or ``None``."""
        return self._rulebook_cache

    def _resolve_rulebook_cache(self, kwargs):
        """Cache to use for a forward call: an explicit kwarg wins.

        Passing ``cache=None`` explicitly disables caching for the call;
        omitting the kwarg falls back to the attached cache.
        """
        if "cache" in kwargs:
            return kwargs["cache"]
        return self._rulebook_cache

    def parameters(self) -> Iterator[Parameter]:
        """All parameters of this module and its children (depth-first)."""
        yield from self._parameters.values()
        for child in self._children.values():
            yield from child.parameters()

    def named_children(self) -> List[Tuple[str, "Module"]]:
        return list(self._children.items())

    def num_parameters(self) -> int:
        return sum(param.numel() for param in self.parameters())

    def forward(self, tensor, **kwargs):
        raise NotImplementedError

    def __call__(self, tensor, **kwargs):
        return self.forward(tensor, **kwargs)


class Sequential(Module):
    """Apply a list of modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.modules = list(modules)
        for i, module in enumerate(self.modules):
            self.register_child(str(i), module)

    def append(self, module: Module) -> None:
        self.register_child(str(len(self.modules)), module)
        self.modules.append(module)

    def forward(self, tensor, **kwargs):
        for module in self.modules:
            tensor = module(tensor, **kwargs)
        return tensor

    def __len__(self) -> int:
        return len(self.modules)

    def __iter__(self):
        return iter(self.modules)
