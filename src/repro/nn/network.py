"""Minimal module system for composing sparse layers."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np


class Parameter:
    """A named learnable array."""

    def __init__(self, value: np.ndarray, name: str = "param") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.name = name

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(self.value.shape)

    def numel(self) -> int:
        return int(self.value.size)

    def __repr__(self) -> str:
        return f"Parameter({self.name}, shape={self.shape})"


class Module:
    """Base class for layers; subclasses implement :meth:`forward`."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._children: Dict[str, "Module"] = {}

    def register_parameter(self, name: str, param: Parameter) -> Parameter:
        self._parameters[name] = param
        return param

    def register_child(self, name: str, module: "Module") -> "Module":
        self._children[name] = module
        return module

    def parameters(self) -> Iterator[Parameter]:
        """All parameters of this module and its children (depth-first)."""
        yield from self._parameters.values()
        for child in self._children.values():
            yield from child.parameters()

    def named_children(self) -> List[Tuple[str, "Module"]]:
        return list(self._children.items())

    def num_parameters(self) -> int:
        return sum(param.numel() for param in self.parameters())

    def forward(self, tensor, **kwargs):
        raise NotImplementedError

    def __call__(self, tensor, **kwargs):
        return self.forward(tensor, **kwargs)


class Sequential(Module):
    """Apply a list of modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.modules = list(modules)
        for i, module in enumerate(self.modules):
            self.register_child(str(i), module)

    def append(self, module: Module) -> None:
        self.register_child(str(len(self.modules)), module)
        self.modules.append(module)

    def forward(self, tensor, **kwargs):
        for module in self.modules:
            tensor = module(tensor, **kwargs)
        return tensor

    def __len__(self) -> int:
        return len(self.modules)

    def __iter__(self):
        return iter(self.modules)
