"""Point-cloud semantic segmentation with the SS U-Net, on ESCA.

This is the paper's benchmark application (Sec. IV-A): the 3D submanifold
sparse U-Net segmenting a voxelized scene.  The script

1. builds an indoor NYU-like scene and a SS U-Net,
2. runs the float forward pass (reference) and checks the submanifold
   property (output sites == input sites),
3. replays every 3^3 Sub-Conv layer through the cycle-accurate ESCA
   simulator with INT8/INT16 quantization, and
4. reports the per-layer and network-level performance table.

Run:  python examples/semantic_segmentation.py
"""

import numpy as np

from repro import AcceleratorConfig, EscaAccelerator, SSUNet, UNetConfig
from repro.analysis.reporting import format_table
from repro.geometry.datasets import load_sample
from repro.hwmodel import PowerModel


def main() -> None:
    sample = load_sample("nyu", seed=0)
    grid = sample.grid
    print(f"scene: NYU-like sample, {grid.nnz} occupied voxels at 192^3")

    config = UNetConfig(
        in_channels=1, num_classes=16, base_channels=16, levels=4, reps=1
    )
    net = SSUNet(config)
    print(
        f"network: SS U-Net, channel plan {config.channel_plan()}, "
        f"{net.num_parameters():,} parameters"
    )

    # Reference forward pass: per-voxel class scores.
    scores = net(grid)
    assert np.array_equal(scores.coords, grid.coords), "submanifold property"
    labels = scores.features.argmax(axis=1)
    histogram = np.bincount(labels, minlength=config.num_classes)
    top = histogram.argsort()[::-1][:3]
    print(
        "segmentation output: per-voxel argmax over "
        f"{config.num_classes} classes; top classes {top.tolist()} "
        f"cover {histogram[top].sum() / grid.nnz:.0%} of the scene"
    )

    # Accelerate every 3^3 Sub-Conv layer on ESCA.
    accelerator = EscaAccelerator(AcceleratorConfig())
    network_run = accelerator.run_network(net, grid, verify=True)
    rows = [
        (
            run.layer_name,
            run.output.nnz,
            f"{run.in_channels}->{run.out_channels}",
            run.total_cycles,
            f"{run.total_seconds * 1e3:.3f}",
            f"{run.effective_gops():.1f}",
            f"{run.cc_utilization:.0%}",
        )
        for run in network_run.layers
    ]
    print()
    print(
        format_table(
            ["Layer", "Sites", "Channels", "Cycles", "ms (e2e)", "GOPS",
             "CC util"],
            rows,
        )
    )
    watts = PowerModel().total_watts(accelerator.config)
    gops = network_run.system_gops()
    print(
        f"\nnetwork: {network_run.total_seconds * 1e3:.2f} ms end-to-end, "
        f"{gops:.2f} effective GOPS at {watts:.2f} W "
        f"-> {gops / watts:.2f} GOPS/W"
    )
    print("all layers verified bit-exact against the quantized reference")


if __name__ == "__main__":
    main()
