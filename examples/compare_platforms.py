"""Cross-platform comparison: CPU vs GPU vs dense accelerator vs ESCA.

Reproduces the story of Fig. 10 and Table III on a single workload and
adds the dense-CNN-accelerator data point the paper motivates ESCA with
(Secs. I-II).

Run:  python examples/compare_platforms.py
"""

import numpy as np

from repro import AcceleratorConfig, EscaAccelerator
from repro.analysis.reporting import format_table
from repro.baselines import (
    CpuExecutionModel,
    DenseAcceleratorModel,
    GpuExecutionModel,
    workload_from_tensor,
)
from repro.geometry.datasets import load_sample
from repro.hwmodel import PowerModel


def main() -> None:
    grid = load_sample("shapenet", seed=0).grid
    rng = np.random.default_rng(0)
    tensor = grid.with_features(rng.standard_normal((grid.nnz, 16)))
    workload = workload_from_tensor(tensor, 16, 16)
    print(
        f"workload: one full-resolution 16->16 Sub-Conv layer, "
        f"{workload.nnz} sites, {workload.matches} matches, "
        f"{workload.effective_ops / 1e6:.1f} M effective ops\n"
    )

    esca = EscaAccelerator(AcceleratorConfig())
    esca_run = esca.run_layer(tensor, out_channels=16)
    esca_seconds = esca_run.total_seconds
    esca_watts = PowerModel().total_watts(esca.config)

    platforms = [
        ("CPU (Xeon 6148)", CpuExecutionModel()),
        ("GPU (Tesla P100)", GpuExecutionModel()),
        ("Dense accelerator", DenseAcceleratorModel()),
    ]
    rows = []
    for name, model in platforms:
        seconds = model.layer_seconds(workload)
        gops = workload.effective_ops / seconds / 1e9
        rows.append(
            (
                name,
                f"{seconds * 1e3:.3f}",
                f"{seconds / esca_seconds:.2f}x",
                f"{gops:.2f}",
                f"{model.power_watts:.2f}",
                f"{gops / model.power_watts:.3f}",
            )
        )
    esca_gops = workload.effective_ops / esca_seconds / 1e9
    rows.append(
        (
            "ESCA (this work)",
            f"{esca_seconds * 1e3:.3f}",
            "1.00x",
            f"{esca_gops:.2f}",
            f"{esca_watts:.2f}",
            f"{esca_gops / esca_watts:.3f}",
        )
    )
    print(
        format_table(
            ["Platform", "Layer ms", "vs ESCA", "GOPS", "Power W", "GOPS/W"],
            rows,
        )
    )
    print(
        "\npaper's headline: ~8.41x vs CPU and ~1.89x vs GPU per layer "
        "(Fig. 10), ~51x GPU power efficiency (Table III)"
    )


if __name__ == "__main__":
    main()
