"""Quickstart: voxelize a point cloud and run one Sub-Conv layer on ESCA.

Walks the full pipeline of the paper in ~30 lines of API:
point cloud -> 192^3 voxel grid -> zero removing -> index-mask/valid-data
encoding -> cycle-accurate SDMU + computing-core simulation.

Run:  python examples/quickstart.py
"""

from repro import AcceleratorConfig, EscaAccelerator, Voxelizer, ZeroRemover
from repro.geometry import make_shapenet_like_cloud


def main() -> None:
    # 1. A synthetic ShapeNet-like point cloud (chair), calibrated to the
    #    sparsity statistics of the paper's Table I sample.
    cloud = make_shapenet_like_cloud(seed=0, category="chair")
    print(f"point cloud: {len(cloud)} points")

    # 2. Voxelize to the paper's 192^3 feature map.
    grid = Voxelizer(resolution=192, normalize=False).voxelize(cloud)
    print(f"voxel grid:  {grid.nnz} nonzero sites, {grid.sparsity:.4%} sparse")

    # 3. Tile-based zero removing (Sec. III-A).
    removal = ZeroRemover((8, 8, 8)).remove(grid)
    print(
        f"zero removing: {removal.active_tiles}/{removal.total_tiles} tiles "
        f"active ({removal.removing_ratio:.2%} removed), "
        f"{removal.scan_reduction:.0f}x fewer positions to scan"
    )

    # 4. Run one 1 -> 16 channel Sub-Conv layer through the cycle-accurate
    #    accelerator, with bit-exact verification against the quantized
    #    reference implementation.
    accelerator = EscaAccelerator(AcceleratorConfig())
    result = accelerator.run_layer(grid, out_channels=16, verify=True)
    print(
        f"ESCA run: {result.total_cycles} cycles at 270 MHz = "
        f"{result.time_seconds * 1e3:.3f} ms core time "
        f"(+{result.overhead_seconds * 1e3:.3f} ms system overhead)"
    )
    print(
        f"matching: {result.active_srfs} active SRFs, {result.matches} "
        f"matches, computing-core utilization {result.cc_utilization:.1%}"
    )
    print(
        f"throughput: {result.effective_gops():.2f} effective GOPS core, "
        f"{result.system_gops():.2f} end-to-end"
    )
    print("verification: accumulators are bit-exact vs the reference")


if __name__ == "__main__":
    main()
