"""Streaming LiDAR-style frames through ESCA (the Fig. 1 application).

A rotating scene is voxelized and executed frame by frame, reporting
per-frame latency, sustained FPS, and tail latency — the numbers an
autonomous-driving deployment actually cares about.

Run:  python examples/lidar_stream.py
"""

from repro.analysis.reporting import format_table
from repro.geometry import make_shapenet_like_cloud
from repro.runtime import RotatingSceneSource, StreamingRunner


def main() -> None:
    source = RotatingSceneSource(
        base_cloud=make_shapenet_like_cloud(seed=0, category="chair"),
        num_frames=12,
        step_rad=0.2,
        seed=0,
    )
    runner = StreamingRunner(in_channels=1, out_channels=16)
    stats = runner.run(source)

    rows = [
        (
            frame.frame_id,
            frame.nnz,
            frame.active_tiles,
            frame.matches,
            f"{frame.core_seconds * 1e3:.3f}",
            f"{frame.total_seconds * 1e3:.3f}",
        )
        for frame in stats.frames
    ]
    print("streaming a rotating scene (one 1->16 Sub-Conv per frame):\n")
    print(
        format_table(
            ["Frame", "Sites", "Active tiles", "Matches", "Core ms",
             "Total ms"],
            rows,
        )
    )
    print(
        f"\nsustained: {stats.fps:.1f} FPS | "
        f"p50 latency {stats.latency_percentile(50) * 1e3:.3f} ms | "
        f"p95 latency {stats.latency_percentile(95) * 1e3:.3f} ms | "
        f"{stats.mean_gops():.2f} effective GOPS"
    )
    print(
        "\nnote: per-frame occupancy varies with rotation (tile counts "
        "change as the object aligns differently with the 8^3 tiling), "
        "but the zero removing strategy keeps every frame's latency "
        "around a millisecond."
    )


if __name__ == "__main__":
    main()
