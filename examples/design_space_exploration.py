"""Design-space exploration of the ESCA architecture.

Uses the validated analytical cycle model plus the resource/power models
to sweep the three main design knobs the paper fixes:

* tile size (zero removing granularity, Sec. III-A),
* computing-array parallelism (Sec. III-D),
* SRF scan cadence (mask-read pipelining, Fig. 7(b)),

and prints the latency / resources / power trade-off for each point,
exactly the kind of study the cycle model makes cheap.

Run:  python examples/design_space_exploration.py
"""

import numpy as np

from repro import AcceleratorConfig, AnalyticalModel
from repro.analysis.reporting import format_table
from repro.arch.config import SdmuTiming
from repro.geometry.datasets import load_sample
from repro.hwmodel import PowerModel, estimate_resources


def main() -> None:
    grid = load_sample("shapenet", seed=0).grid
    rng = np.random.default_rng(0)
    tensor = grid.with_features(rng.standard_normal((grid.nnz, 16)))
    in_ch, out_ch = 16, 16
    print(
        f"workload: full-resolution {in_ch}->{out_ch} Sub-Conv, "
        f"{grid.nnz} sites\n"
    )

    rows = []
    for tile in (4, 8, 16):
        for par in (8, 16, 32):
            for cadence in (1, 3):
                config = AcceleratorConfig(
                    tile_shape=(tile, tile, tile),
                    ic_parallelism=par,
                    oc_parallelism=par,
                    timing=SdmuTiming(srf_cadence_cycles=cadence),
                )
                model = AnalyticalModel(config)
                cycles = model.estimate_layer(tensor, in_ch, out_ch)
                resources = estimate_resources(config)
                watts = PowerModel().total_watts(config)
                ms = cycles / config.clock_hz * 1e3
                fits = "yes" if resources.fits() else "NO"
                rows.append(
                    (
                        f"{tile}^3",
                        f"{par}x{par}",
                        cadence,
                        cycles,
                        f"{ms:.3f}",
                        int(resources.total.dsp),
                        f"{resources.total.bram36:.1f}",
                        f"{watts:.2f}",
                        fits,
                    )
                )
    print(
        format_table(
            ["Tile", "Array", "Cadence", "Cycles", "ms", "DSP", "BRAM",
             "Power W", "Fits ZCU102"],
            rows,
        )
    )

    best = min(rows, key=lambda r: r[3])
    paper_point = next(
        r for r in rows if r[0] == "8^3" and r[1] == "16x16" and r[2] == 3
    )
    print(
        f"\nfastest point: tile {best[0]}, array {best[1]}, cadence "
        f"{best[2]} at {best[4]} ms"
    )
    print(
        f"paper's point: tile {paper_point[0]}, array {paper_point[1]}, "
        f"cadence {paper_point[2]} at {paper_point[4]} ms — chosen for its "
        "resource/power balance on this matching-bound workload"
    )


if __name__ == "__main__":
    main()
