"""Visualize the data structures of the paper in ASCII.

Renders (1) occupancy projections of the voxelized samples (the feature
maps of Fig. 3), (2) the active-tile maps produced by the zero removing
strategy, and (3) the actual SDMU pipeline timing diagram in the style of
Fig. 7(b), recorded from the cycle-accurate simulator.

Run:  python examples/visualize_scene.py
"""

from repro.analysis import occupancy_summary, render_projection, render_tile_map
from repro.arch import AcceleratorConfig, MatchingTimeline, Sdmu, TileGrid
from repro.arch.encoding import EncodedFeatureMap
from repro.geometry.datasets import load_sample


def main() -> None:
    for dataset in ("shapenet", "nyu"):
        sample = load_sample(dataset, seed=0)
        grid = sample.grid
        print(f"=== {dataset} sample: {occupancy_summary(grid)} ===")
        print("\ntop-down occupancy projection (z axis):")
        print(render_projection(grid, axis="z", max_size=48))
        print("\nactive 8^3 tiles after zero removing (z projection):")
        print(render_tile_map(TileGrid(grid, (8, 8, 8)), axis="z"))
        print()

    # Fig. 7(b): the matching pipeline, recorded from the simulator.
    print("=== SDMU pipeline timing (Fig. 7(b)), first SRFs ===")
    config = AcceleratorConfig()
    grid = load_sample("shapenet", seed=0).grid
    encoded = EncodedFeatureMap(grid, config.tile_shape, kernel_size=3)
    timeline = MatchingTimeline(max_srfs=6)
    sdmu = Sdmu(encoded, config, timeline=timeline)
    for cycle in range(400):
        sdmu.pop_match()
        sdmu.advance(cycle)
    print(timeline.render(max_rows=6, max_cycles=60))


if __name__ == "__main__":
    main()
